package gossip

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/fed"
	"repro/internal/netem"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pilot"
)

// RoundResult reports one completed gossip round.
type RoundResult struct {
	Round   int
	Trained []int // workers that produced a parcel this round
	Offline []int // workers silenced by the fault plan this round
	// Exchanges counts completed push-pull exchanges (peer and head);
	// FailedExchanges those aborted by link faults after retry
	// exhaustion; Unreachable the partner picks that were offline.
	Exchanges       int
	FailedExchanges int
	Unreachable     int
	// ParcelsMoved is how many parcel replicas crossed a link.
	ParcelsMoved int
	DigestBytes  int64
	ParcelBytes  int64
	// HeadSynced reports whether this round's cloud-head sync completed
	// (false under a cloud partition — the mesh carries on without it).
	HeadSynced bool
	// Wall is the round's simulated wall-clock: the slowest worker's
	// training plus every sequentially billed exchange.
	Wall time.Duration
	// FleetValLoss scores the union of every worker's parcels — the
	// "fleet head version" a rejoining peer anti-entropies toward.
	// HeadValLoss scores the cloud head's (possibly stale) replica.
	FleetValLoss float64
	HeadValLoss  float64
	// ConvergenceLag is the worst reachable worker's distance behind the
	// fleet, in rounds: 0 means every reachable worker holds every parcel
	// every round has produced.
	ConvergenceLag int
}

// BytesOnWire is the round's total billed traffic, digests plus parcels.
func (rr RoundResult) BytesOnWire() int64 { return rr.DigestBytes + rr.ParcelBytes }

// Result is a whole run.
type Result struct {
	Rounds            []RoundResult
	FinalFleetValLoss float64
	FinalHeadValLoss  float64
	TotalBytes        int64
	MeanRoundWall     time.Duration
	// HeadSyncs counts rounds whose cloud sync completed.
	HeadSyncs int
	// Checkpoint names the objstore location of the head's model (empty
	// when checkpointing is disabled).
	CheckpointContainer, CheckpointObject string
}

// instrument pre-registers the gossip_* series so scrapes before the
// first round still see them. Everything is nil-safe.
func (r *Run) instrument() {
	reg := r.obs.Metrics
	reg.Help("gossip_rounds_total", "gossip rounds completed")
	reg.Help("gossip_parcels_total", "parcel replicas moved between stores, by direction")
	reg.Help("gossip_exchanges_total", "push-pull exchanges completed")
	reg.Help("gossip_exchange_failures_total", "exchanges aborted, by reason (link faults, unreachable partner)")
	reg.Help("gossip_bytes_on_wire_total", "gossip traffic billed over the links, by payload kind and wire")
	reg.Help("gossip_round_seconds", "simulated round wall-clock (training plus sequential exchanges)")
	reg.Help("gossip_fleet_val_loss", "validation loss of the fleet-union model after the latest round")
	reg.Help("gossip_head_val_loss", "validation loss of the cloud head's replica after the latest round")
	reg.Help("gossip_convergence_lag_rounds", "worst reachable worker's lag behind the fleet, in rounds")
	reg.Help("gossip_head_syncs_total", "cloud-head syncs completed")
	reg.Help("gossip_head_sync_skipped_total", "cloud-head syncs skipped (link faults exhausted the retry budget)")
	reg.Help("gossip_checkpoints_total", "head checkpoints written to the object store")
	reg.Help("gossip_table_rejections_total", "peer-table insertions refused (self, duplicate, or full bucket)")
	reg.Counter("gossip_rounds_total")
	reg.Counter("gossip_exchanges_total")
	reg.Counter("gossip_head_syncs_total")
	reg.Counter("gossip_head_sync_skipped_total")
	reg.Counter("gossip_checkpoints_total")
	var rejected float64
	for _, w := range r.workers {
		rejected += float64(w.table.Rejected())
	}
	reg.Counter("gossip_table_rejections_total").Add(rejected)
}

// Execute runs every configured round and returns the run report.
func (r *Run) Execute() (Result, error) {
	span := r.obs.Tracer.Start("gossip-train")
	span.SetAttr("workers", r.Cfg.Workers)
	span.SetAttr("rounds", r.Cfg.Rounds)
	span.SetAttr("fanout", r.Cfg.fanout())
	span.SetAttr("anti_entropy_every", r.Cfg.antiEntropyEvery())
	span.SetAttr("compress", r.codec.Name())
	var res Result
	var wallSum time.Duration
	for i := 0; i < r.Cfg.Rounds; i++ {
		rr, err := r.round(i, span)
		if err != nil {
			span.EndErr(err)
			return res, err
		}
		res.Rounds = append(res.Rounds, rr)
		res.TotalBytes += rr.BytesOnWire()
		res.FinalFleetValLoss = rr.FleetValLoss
		res.FinalHeadValLoss = rr.HeadValLoss
		if rr.HeadSynced {
			res.HeadSyncs++
		}
		wallSum += rr.Wall
		if r.Cfg.RoundGap > 0 {
			r.clock.Advance(r.Cfg.RoundGap)
		}
	}
	if n := len(res.Rounds); n > 0 {
		res.MeanRoundWall = wallSum / time.Duration(n)
	}
	if r.store != nil && r.Cfg.Container != "" {
		res.CheckpointContainer, res.CheckpointObject = r.Cfg.Container, r.Cfg.Object
	}
	span.SetAttr("final_fleet_val_loss", res.FinalFleetValLoss)
	span.SetAttr("bytes_on_wire", res.TotalBytes)
	span.End()
	return res, nil
}

// round executes one gossip round: parallel local training on each
// worker's store-rebuilt base, parcel production, sequential push-pull
// exchanges in worker-index order, the cloud-head sync, checkpointing,
// and validation of both the fleet union and the head replica.
func (r *Run) round(idx int, parent *obs.Span) (RoundResult, error) {
	reg := r.obs.Metrics
	span := parent.Child("gossip-round")
	span.SetAttr("round", idx)
	sc := span.Context()
	rr := RoundResult{Round: idx, FleetValLoss: -1, HeadValLoss: -1}
	wallStart := r.now()

	// Churn: a worker inside a scripted silence window sits the round out
	// entirely — no training, no initiating, unreachable as a partner.
	// Its store survives, so when the window passes the next round's
	// digest exchanges anti-entropy it back to the fleet head version.
	for _, w := range r.workers {
		w.offline = r.plan != nil && r.plan.DeviceSilent(w.name, r.now())
		if w.offline {
			rr.Offline = append(rr.Offline, w.idx)
		}
	}

	// Local training: every reachable trainer rebuilds its base from its
	// parcel store (genesis + parcels in canonical order), copies it to
	// the trainable model, and runs its epochs. Each worker's arithmetic
	// is self-contained and seeded, so the parallel schedule cannot
	// change a bit of the result.
	var wg sync.WaitGroup
	trainErrs := make([]error, len(r.workers))
	trainers := make([]bool, len(r.workers))
	for i, w := range r.workers {
		if w.offline || w.freeRider {
			continue
		}
		trainers[i] = true
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			if err := r.rebuild(w.base, w.store); err != nil {
				trainErrs[i] = err
				return
			}
			if err := copyWeights(w.local, w.base); err != nil {
				trainErrs[i] = err
				return
			}
			cfg := nn.TrainConfig{
				Epochs:    r.Cfg.LocalEpochs,
				BatchSize: r.Cfg.BatchSize,
				Seed:      r.Cfg.Seed + int64(idx)*1000 + int64(w.idx)*7 + 13,
				ClipGrad:  5,
			}
			_, err := w.local.Train(w.shard, cfg)
			trainErrs[i] = err
		}(i, w)
	}
	wg.Wait()
	var maxTrain time.Duration
	trainSpans := make([]*obs.Span, len(r.workers))
	for i, w := range r.workers {
		if !trainers[i] {
			continue
		}
		if trainErrs[i] != nil {
			span.EndErr(trainErrs[i])
			return rr, fmt.Errorf("gossip: worker %d round %d: %w", w.idx, idx, trainErrs[i])
		}
		cost := r.trainCost(w)
		if cost > maxTrain {
			maxTrain = cost
		}
		tsp := span.Child("gossip_local_train")
		tsp.SetAttr("worker", w.name)
		tsp.SetAttr("samples", len(w.shard))
		tsp.SetSimDuration("train", cost)
		trainSpans[i] = tsp
	}
	r.clock.Advance(maxTrain)
	for _, tsp := range trainSpans {
		if tsp != nil {
			tsp.End()
		}
	}

	// Parcel production: delta = local - base, scaled by the worker's
	// shard weight, encoded once through the codec (error feedback stays
	// at the origin), filed into the origin's own store. Every replica of
	// this parcel anywhere in the fleet carries these exact values.
	var produced []Key
	for i, w := range r.workers {
		if !trainers[i] {
			continue
		}
		delta, err := nn.DeltaFrom(w.local.Model(), w.base.Model())
		if err != nil {
			span.EndErr(err)
			return rr, err
		}
		vals := make([][]float64, len(delta.Tensors))
		for ti, t := range delta.Tensors {
			sv := make([]float64, len(t.Data))
			for j, v := range t.Data {
				sv[j] = w.weight * v
			}
			vals[ti] = sv
		}
		enc := r.codec.EncodeDelta(vals, w.residualFor(r.codec, vals))
		p := &Parcel{Origin: w.idx, Round: idx, WireBytes: enc.WireBytes, Values: enc.Values}
		if err := p.Validate(); err != nil {
			span.EndErr(err)
			return rr, err
		}
		w.store.Put(p)
		produced = append(produced, p.Key())
		rr.Trained = append(rr.Trained, w.idx)
	}
	r.produced = append(r.produced, produced)

	// Exchange phase: each reachable worker initiates, in index order so
	// netem's seeded draws replay identically. Partner selection walks
	// the Kademlia table nearest-bucket-first on a per-(round, worker)
	// seeded stream; on anti-entropy rounds one extra partner comes from
	// the farthest occupied bucket. Exchanges are push-pull, so parcels
	// received early in the phase spread second-hand later in the same
	// phase.
	antiEntropy := r.Cfg.antiEntropyEvery() > 0 && (idx+1)%r.Cfg.antiEntropyEvery() == 0
	byName := make(map[string]*worker, len(r.workers))
	for _, w := range r.workers {
		byName[w.name] = w
	}
	for _, w := range r.workers {
		if w.offline {
			continue
		}
		rng := rand.New(rand.NewSource(r.Cfg.Seed ^ (int64(idx)*1000003 + int64(w.idx)*7919 + 1)))
		partners := w.table.Select(rng, r.Cfg.fanout())
		if antiEntropy {
			if far, ok := w.table.Farthest(rng); ok {
				partners = append(partners, far)
			}
		}
		seen := map[string]bool{}
		for _, p := range partners {
			if seen[p.Name] {
				continue
			}
			seen[p.Name] = true
			peer := byName[p.Name]
			link, err := r.mesh.Link(w.name, peer.name)
			if err != nil {
				span.EndErr(err)
				return rr, err
			}
			if peer.offline {
				// The dial times out: bill one empty-digest probe, record
				// the dead partner, move on.
				psp := span.Child("gossip_probe")
				psp.SetAttr("initiator", w.name)
				psp.SetAttr("peer", peer.name)
				d, err := r.transfer(psp.Context(), "gossip_probe", DigestBytes(0), link)
				if err != nil && !faults.Retryable(err) {
					psp.EndErr(err)
					span.EndErr(err)
					return rr, err
				}
				psp.SetSimDuration("probe", d)
				psp.End()
				rr.Unreachable++
				reg.Counter("gossip_exchange_failures_total", obs.L("reason", "unreachable")).Inc()
				continue
			}
			xs, failed, err := r.exchange(span, exchangeKind(antiEntropy, w, p), "peer", w.name, peer.name, w.store, peer.store, link)
			if err != nil {
				span.EndErr(err)
				return rr, err
			}
			rr.DigestBytes += xs.digestBytes
			rr.ParcelBytes += xs.parcelBytes
			rr.ParcelsMoved += xs.moved
			if failed {
				rr.FailedExchanges++
				continue
			}
			rr.Exchanges++
			reg.Counter("gossip_exchanges_total").Inc()
		}
	}

	// Cloud-head sync: one rotating contact per round carries the mesh's
	// news across the WAN (and pulls anything the head has that the
	// contact missed). Under a cloud partition the retry budget exhausts
	// and the round simply proceeds headless.
	if contact := r.headContact(idx); contact != nil {
		xs, failed, err := r.exchange(span, "head_sync", "head", contact.name, HeadName, contact.store, r.head.store, r.Cfg.CloudLink)
		if err != nil {
			span.EndErr(err)
			return rr, err
		}
		rr.DigestBytes += xs.digestBytes
		rr.ParcelBytes += xs.parcelBytes
		rr.ParcelsMoved += xs.moved
		if failed {
			reg.Counter("gossip_head_sync_skipped_total").Inc()
		} else {
			rr.HeadSynced = true
			reg.Counter("gossip_head_syncs_total").Inc()
			if xs.moved > 0 {
				r.head.dirty = true
			}
		}
	}

	// Checkpoint: only when the head actually learned something new —
	// a stale head rewriting the same bytes during a partition would be
	// noise, and during a full partition it cannot write at all.
	headChanged := r.head.dirty
	if headChanged {
		if err := r.rebuild(r.head.model, r.head.store); err != nil {
			span.EndErr(err)
			return rr, err
		}
		r.head.dirty = false
		if err := r.checkpoint(idx, span); err != nil {
			span.EndErr(err)
			return rr, err
		}
	}

	// Convergence lag: how far the worst reachable worker trails the
	// fleet's produced-parcel history. Stores are grow-only, so each
	// worker's caught-up watermark only moves forward.
	for _, w := range r.workers {
		for w.caughtUp <= idx && w.store.HasAll(r.produced[w.caughtUp]) {
			w.caughtUp++
		}
		if w.offline {
			continue
		}
		if lag := (idx + 1) - w.caughtUp; lag > rr.ConvergenceLag {
			rr.ConvergenceLag = lag
		}
	}
	reg.Gauge("gossip_convergence_lag_rounds").Set(float64(rr.ConvergenceLag))

	// Validation: the fleet union is what a rejoining peer converges to;
	// the head replica is what the cloud would serve.
	if len(r.val) > 0 {
		union := NewStore()
		for _, w := range r.workers {
			for _, k := range w.store.Keys() {
				if !union.Has(k) {
					union.Put(w.store.Get(k))
				}
			}
		}
		vsp := span.Child("gossip_validate")
		if err := r.rebuild(r.fleet, union); err != nil {
			vsp.EndErr(err)
			span.EndErr(err)
			return rr, err
		}
		fl, err := r.fleet.Validate(r.val, r.Cfg.BatchSize)
		if err != nil {
			vsp.EndErr(err)
			span.EndErr(err)
			return rr, err
		}
		rr.FleetValLoss = fl
		reg.Gauge("gossip_fleet_val_loss").Set(fl)
		hl, err := r.head.model.Validate(r.val, r.Cfg.BatchSize)
		if err != nil {
			vsp.EndErr(err)
			span.EndErr(err)
			return rr, err
		}
		rr.HeadValLoss = hl
		reg.Gauge("gossip_head_val_loss").Set(hl)
		vsp.SetAttr("fleet_val_loss", fl)
		vsp.SetAttr("head_val_loss", hl)
		vsp.End()
	}
	if r.afterRound != nil {
		if err := r.afterRound(idx, sc); err != nil {
			span.EndErr(err)
			return rr, fmt.Errorf("gossip: after-round hook round %d: %w", idx, err)
		}
	}

	sort.Ints(rr.Trained)
	sort.Ints(rr.Offline)
	rr.Wall = r.now().Sub(wallStart)
	reg.Counter("gossip_rounds_total").Inc()
	reg.Histogram("gossip_round_seconds", obs.DefSecondsBuckets).
		ObserveDurationExemplar(rr.Wall, span.Context().TraceID)
	span.SetAttr("trained", len(rr.Trained))
	span.SetAttr("offline", len(rr.Offline))
	span.SetAttr("exchanges", rr.Exchanges)
	span.SetAttr("parcels_moved", rr.ParcelsMoved)
	span.SetAttr("bytes_on_wire", rr.BytesOnWire())
	span.SetAttr("convergence_lag", rr.ConvergenceLag)
	span.SetAttr("head_synced", rr.HeadSynced)
	span.SetSimDuration("round_wall", rr.Wall)
	span.End()
	return rr, nil
}

// exchangeKind labels a peer exchange span for the trace.
func exchangeKind(antiEntropy bool, w *worker, p Peer) string {
	if antiEntropy && w.table.BucketOf(p.Name) == farthestBucket(w.table) {
		return "anti_entropy"
	}
	return "gossip"
}

// farthestBucket is the highest occupied bucket index, or -1.
func farthestBucket(t *Table) int {
	for i := 63; i >= 0; i-- {
		if len(t.Bucket(i)) > 0 {
			return i
		}
	}
	return -1
}

// headContact picks the round's cloud-sync contact: the first reachable
// worker at or after index round%N (rotating duty, so no single worker
// pays the WAN bill every round). nil when the whole fleet is silent.
func (r *Run) headContact(round int) *worker {
	n := len(r.workers)
	for off := 0; off < n; off++ {
		w := r.workers[(round+off)%n]
		if !w.offline {
			return w
		}
	}
	return nil
}

// xferStats accumulates one exchange's billing.
type xferStats struct {
	digestBytes int64
	parcelBytes int64
	moved       int
	dur         time.Duration
}

// exchange runs one push-pull anti-entropy session between two stores
// over link: swap digests, pull what a is missing, push what b is
// missing, applying parcels to both replicas immediately. failed=true
// means link faults exhausted the retry budget mid-exchange (whatever
// transferred before the failure stays applied — gossip is idempotent,
// the next exchange finishes the job); a non-nil error is fatal.
func (r *Run) exchange(parent *obs.Span, kind, wire, initiator, peerName string, a, b *Store, link netem.Link) (xferStats, bool, error) {
	reg := r.obs.Metrics
	var xs xferStats
	sp := parent.Child("gossip_exchange")
	sp.SetAttr("kind", kind)
	sp.SetAttr("initiator", initiator)
	sp.SetAttr("peer", peerName)
	digestBytes := DigestBytes(a.Len()) + DigestBytes(b.Len())
	d, err := r.transfer(sp.Context(), "gossip_digest", digestBytes, link)
	xs.dur += d
	if err != nil {
		if !faults.Retryable(err) {
			sp.EndErr(err)
			return xs, false, err
		}
		reg.Counter("gossip_exchange_failures_total", obs.L("reason", "link")).Inc()
		sp.SetAttr("failed", true)
		sp.EndErr(err)
		return xs, true, nil
	}
	xs.digestBytes += digestBytes
	reg.Counter("gossip_bytes_on_wire_total", obs.L("kind", "digest"), obs.L("wire", wire)).Add(float64(digestBytes))

	aKeys, bKeys := a.Keys(), b.Keys()
	legs := []struct {
		dir      string
		keys     []Key
		src, dst *Store
	}{
		{"pull", a.Missing(bKeys), b, a},
		{"push", b.Missing(aKeys), a, b},
	}
	for _, leg := range legs {
		if len(leg.keys) == 0 {
			continue
		}
		var size int64
		for _, k := range leg.keys {
			size += leg.src.Get(k).WireBytes
		}
		psp := sp.Child("gossip_parcels")
		psp.SetAttr("dir", leg.dir)
		psp.SetAttr("parcels", len(leg.keys))
		psp.SetAttr("bytes", size)
		d, err := r.transfer(psp.Context(), "gossip_parcel", size, link)
		xs.dur += d
		if err != nil {
			psp.EndErr(err)
			if !faults.Retryable(err) {
				sp.EndErr(err)
				return xs, false, err
			}
			reg.Counter("gossip_exchange_failures_total", obs.L("reason", "link")).Inc()
			sp.SetAttr("failed", true)
			sp.End()
			return xs, true, nil
		}
		psp.SetSimDuration(leg.dir, d)
		psp.End()
		for _, k := range leg.keys {
			leg.dst.Put(leg.src.Get(k))
		}
		xs.parcelBytes += size
		xs.moved += len(leg.keys)
		reg.Counter("gossip_bytes_on_wire_total", obs.L("kind", "parcel"), obs.L("wire", wire)).Add(float64(size))
		reg.Counter("gossip_parcels_total", obs.L("dir", leg.dir)).Add(float64(len(leg.keys)))
	}
	sp.SetAttr("parcels_moved", xs.moved)
	sp.SetSimDuration("exchange", xs.dur)
	sp.End()
	return xs, false, nil
}

// rebuild reconstructs a pilot's weights as genesis plus every parcel in
// the store, applied in canonical (round, origin) order — the pure
// function of the parcel set that makes any two same-set replicas
// bit-identical.
func (r *Run) rebuild(p *pilot.Pilot, s *Store) error {
	params := p.Model().Params()
	if len(params) != len(r.initVals) {
		return fmt.Errorf("gossip: rebuild: model has %d params, genesis %d", len(params), len(r.initVals))
	}
	for i, prm := range params {
		if len(prm.W.Data) != len(r.initVals[i]) {
			return fmt.Errorf("gossip: rebuild: param %d has %d weights, genesis %d",
				i, len(prm.W.Data), len(r.initVals[i]))
		}
		copy(prm.W.Data, r.initVals[i])
		prm.Grad.Zero()
	}
	for _, k := range s.keys {
		pc := s.parcels[k]
		if len(pc.Values) != len(params) {
			return fmt.Errorf("gossip: parcel %d/%d has %d tensors, model %d",
				pc.Origin, pc.Round, len(pc.Values), len(params))
		}
		for i, t := range pc.Values {
			dst := params[i].W.Data
			if len(t) != len(dst) {
				return fmt.Errorf("gossip: parcel %d/%d tensor %d has %d entries, param %d",
					pc.Origin, pc.Round, i, len(t), len(dst))
			}
			for j, v := range t {
				dst[j] += v
			}
		}
	}
	return nil
}

// copyWeights installs src's weights into dst (same architecture).
func copyWeights(dst, src *pilot.Pilot) error {
	dp, sp := dst.Model().Params(), src.Model().Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("gossip: copy: %d params vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if len(dp[i].W.Data) != len(sp[i].W.Data) {
			return fmt.Errorf("gossip: copy: param %d size %d vs %d",
				i, len(dp[i].W.Data), len(sp[i].W.Data))
		}
		copy(dp[i].W.Data, sp[i].W.Data)
		dp[i].Grad.Zero()
	}
	return nil
}

// checkpoint writes the head's model to the object store under the
// retry policy, where the serving registry's ETag poll picks it up.
func (r *Run) checkpoint(round int, parent *obs.Span) error {
	if r.store == nil || r.Cfg.Container == "" {
		return nil
	}
	csp := parent.Child("gossip_checkpoint")
	csp.SetAttr("round", round)
	err := r.writeCheckpoint(round, csp.Context())
	csp.EndErr(err)
	if err != nil {
		return err
	}
	r.obs.Metrics.Counter("gossip_checkpoints_total").Inc()
	return nil
}

func (r *Run) writeCheckpoint(round int, sc obs.SpanContext) error {
	var buf bytes.Buffer
	if err := r.head.model.Save(&buf); err != nil {
		return err
	}
	meta := map[string]string{"gossip-round": fmt.Sprint(round)}
	put := func() error {
		_, err := r.store.PutTraced(sc, r.Cfg.Container, r.Cfg.Object, buf.Bytes(), meta)
		return err
	}
	if r.plan == nil {
		return put()
	}
	return r.plan.Do("gossip_checkpoint", func(int) (time.Duration, error) {
		return 0, put()
	})
}

// trainCost is the simulated edge compute time for one worker's local
// epochs, matching fed's model.
func (r *Run) trainCost(w *worker) time.Duration {
	work := float64(len(w.shard)*r.Cfg.LocalEpochs) * float64(r.Cfg.PerSampleCost)
	return time.Duration(work / w.speed)
}

// residualFor returns the worker's error-feedback accumulator for
// sparsifying codecs (reset when the model shape changed), nil
// otherwise — fed's exact semantics, per parcel origin.
func (w *worker) residualFor(c fed.Codec, delta [][]float64) [][]float64 {
	if !c.Sparsifies() {
		return nil
	}
	if !fed.ShapesMatch(w.residual, delta) {
		w.residual = make([][]float64, len(delta))
		for i, t := range delta {
			w.residual[i] = make([]float64, len(t))
		}
	}
	return w.residual
}
