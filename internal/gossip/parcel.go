package gossip

import (
	"fmt"
	"sort"
)

// Parcels are the unit of dissemination: one worker's weight-scaled,
// codec-decoded training delta for one round, content-addressed by
// (origin, round). Every replica of a parcel carries identical values —
// the origin encodes once and every receiver stores the same decoded
// floats — so a worker's model state is a pure function of the parcel
// *set* it holds: rebuild from the shared init, adding parcels in the
// canonical (round, origin) order, and two workers holding the same set
// have bit-identical weights no matter which peers delivered which
// parcels in which order. That construction, not hope about float
// addition associating, is the subsystem's determinism story.

// Key addresses one parcel.
type Key struct {
	Origin int // producing worker's index
	Round  int // training round that produced it
}

// keyLess is the canonical parcel order: by round, then origin.
func keyLess(a, b Key) bool {
	if a.Round != b.Round {
		return a.Round < b.Round
	}
	return a.Origin < b.Origin
}

// Parcel is one disseminated delta.
type Parcel struct {
	Origin    int
	Round     int
	WireBytes int64       // what one transfer of this parcel bills
	Values    [][]float64 // decoded, shard-weight-scaled addends per tensor
}

// Key returns the parcel's address.
func (p *Parcel) Key() Key { return Key{Origin: p.Origin, Round: p.Round} }

// Store is a grow-only replica of the parcel space: puts are idempotent,
// nothing is ever removed, and Keys always returns the canonical order.
// Grow-only is what makes anti-entropy trivially convergent — a digest
// diff can only ever add.
type Store struct {
	parcels map[Key]*Parcel
	keys    []Key // maintained in canonical order
}

// NewStore returns an empty replica.
func NewStore() *Store {
	return &Store{parcels: make(map[Key]*Parcel)}
}

// Put files a parcel, reporting whether it was new. A re-delivery (two
// peers offering the same parcel in one round) is a no-op, not an error.
func (s *Store) Put(p *Parcel) bool {
	k := p.Key()
	if _, ok := s.parcels[k]; ok {
		return false
	}
	s.parcels[k] = p
	i := sort.Search(len(s.keys), func(i int) bool { return !keyLess(s.keys[i], k) })
	s.keys = append(s.keys, Key{})
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = k
	return true
}

// Has reports whether the key is held.
func (s *Store) Has(k Key) bool {
	_, ok := s.parcels[k]
	return ok
}

// Get returns the parcel for k, or nil.
func (s *Store) Get(k Key) *Parcel { return s.parcels[k] }

// Len is the number of parcels held.
func (s *Store) Len() int { return len(s.keys) }

// Keys returns the held keys in canonical (round, origin) order.
func (s *Store) Keys() []Key { return append([]Key(nil), s.keys...) }

// Missing returns the digest keys this store does not hold, in canonical
// order — the "wants" half of a push-pull exchange.
func (s *Store) Missing(digest []Key) []Key {
	var out []Key
	for _, k := range digest {
		if !s.Has(k) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(a, b int) bool { return keyLess(out[a], out[b]) })
	return out
}

// HasAll reports whether every key is held.
func (s *Store) HasAll(keys []Key) bool {
	for _, k := range keys {
		if !s.Has(k) {
			return false
		}
	}
	return true
}

// DigestBytes prices a version-vector digest on the wire: a 16-byte
// header plus 12 bytes per key (4-byte origin, 4-byte round, 4-byte
// checksum). The digest is what push-pull exchanges trade before any
// parcel moves, so its cost scales with history length, not model size.
func DigestBytes(n int) int64 { return 16 + 12*int64(n) }

// Validate sanity-checks a parcel before it enters a store: negative
// coordinates or empty values reject (a malformed parcel must fail at
// the door, not corrupt a rebuild later).
func (p *Parcel) Validate() error {
	switch {
	case p == nil:
		return fmt.Errorf("gossip: nil parcel")
	case p.Origin < 0:
		return fmt.Errorf("gossip: parcel origin %d", p.Origin)
	case p.Round < 0:
		return fmt.Errorf("gossip: parcel round %d", p.Round)
	case len(p.Values) == 0:
		return fmt.Errorf("gossip: parcel %d/%d has no values", p.Origin, p.Round)
	case p.WireBytes <= 0:
		return fmt.Errorf("gossip: parcel %d/%d bills %d bytes", p.Origin, p.Round, p.WireBytes)
	}
	return nil
}
