package gossip

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestIDOfAndBuckets(t *testing.T) {
	if IDOf("gossip-worker-0") != IDOf("gossip-worker-0") {
		t.Fatal("IDOf not stable")
	}
	if IDOf("a") == IDOf("b") {
		t.Fatal("distinct names hash to the same node ID")
	}
	a, b := IDOf("a"), IDOf("b")
	if a.Distance(b) != b.Distance(a) {
		t.Fatal("XOR distance not symmetric")
	}
	if a.Distance(a) != 0 {
		t.Fatal("self distance not zero")
	}
	// The bucket index is the highest set bit of the distance.
	if bucketIndex(1) != 0 {
		t.Fatalf("bucketIndex(1) = %d, want 0", bucketIndex(1))
	}
	if bucketIndex(1<<63) != 63 {
		t.Fatalf("bucketIndex(1<<63) = %d, want 63", bucketIndex(1<<63))
	}
	if bucketIndex(0b1011) != 3 {
		t.Fatalf("bucketIndex(0b1011) = %d, want 3", bucketIndex(0b1011))
	}
}

func TestTableInsertRejections(t *testing.T) {
	tb := NewTable("self", 4)
	if tb.Insert("self") {
		t.Fatal("self-insert accepted")
	}
	if !tb.Insert("peer") {
		t.Fatal("first insert rejected")
	}
	if tb.Insert("peer") {
		t.Fatal("duplicate insert accepted")
	}
	if tb.Len() != 1 || tb.Rejected() != 2 {
		t.Fatalf("len %d rejected %d, want 1 and 2", tb.Len(), tb.Rejected())
	}
}

func TestTableFullBucketRejects(t *testing.T) {
	// Find five names that land in the same bucket of one table, then
	// watch the fifth bounce off a k=4 bucket.
	tb := NewTable("self", 4)
	byBucket := map[int][]string{}
	target, members := -1, []string(nil)
	for i := 0; i < 4096 && target < 0; i++ {
		n := fmt.Sprintf("candidate-%d", i)
		b := tb.BucketOf(n)
		byBucket[b] = append(byBucket[b], n)
		if len(byBucket[b]) == 5 {
			target, members = b, byBucket[b]
		}
	}
	if target < 0 {
		t.Fatal("could not find 5 same-bucket names in 4096 candidates")
	}
	for i, n := range members {
		got := tb.Insert(n)
		if want := i < 4; got != want {
			t.Fatalf("insert %d into bucket %d = %v, want %v", i, target, got, want)
		}
	}
	if got := len(tb.Bucket(target)); got != 4 {
		t.Fatalf("bucket %d holds %d, want 4", target, got)
	}
}

func TestSeedOrderIndependent(t *testing.T) {
	names := []string{"w3", "w1", "cloud", "w0", "w2"}
	reversed := []string{"w2", "w0", "cloud", "w1", "w3"}
	a, b := NewTable("w1", 4), NewTable("w1", 4)
	Seed(a, names)
	Seed(b, reversed)
	if a.Len() != b.Len() || a.Len() != 4 {
		t.Fatalf("seeded lens %d vs %d, want 4", a.Len(), b.Len())
	}
	for i := 0; i < 64; i++ {
		ba, bb := a.Bucket(i), b.Bucket(i)
		if len(ba) != len(bb) {
			t.Fatalf("bucket %d: %d vs %d members", i, len(ba), len(bb))
		}
		for j := range ba {
			if ba[j] != bb[j] {
				t.Fatalf("bucket %d member %d: %+v vs %+v", i, j, ba[j], bb[j])
			}
		}
	}
}

func TestSelectDeterministicAndBounded(t *testing.T) {
	tb := NewTable("w0", 4)
	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	Seed(tb, names)

	pick := func(seed int64, fanout int) []Peer {
		return tb.Select(rand.New(rand.NewSource(seed)), fanout)
	}
	a, b := pick(7, 3), pick(7, 3)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("fanout-3 selection returned %d and %d peers", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed selections diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// No duplicates, and every pick is a real member.
	seen := map[string]bool{}
	for _, p := range pick(3, tb.Len()) {
		if seen[p.Name] {
			t.Fatalf("duplicate pick %q", p.Name)
		}
		seen[p.Name] = true
		if p.Name == "w0" {
			t.Fatal("selected self")
		}
	}
	if len(seen) != tb.Len() {
		t.Fatalf("full-fanout selection found %d of %d peers", len(seen), tb.Len())
	}
	// Asking past the table size caps at the table size.
	if got := pick(1, 100); len(got) != tb.Len() {
		t.Fatalf("oversized fanout returned %d, want %d", len(got), tb.Len())
	}
	// Fanout 1 draws from the nearest occupied bucket.
	nearest := -1
	for i := 0; i < 64 && nearest < 0; i++ {
		if len(tb.Bucket(i)) > 0 {
			nearest = i
		}
	}
	one := pick(9, 1)
	if len(one) != 1 || tb.BucketOf(one[0].Name) != nearest {
		t.Fatalf("fanout-1 pick %+v not from nearest bucket %d", one, nearest)
	}
}

func TestFarthestPicksFarthestBucket(t *testing.T) {
	tb := NewTable("w0", 4)
	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	Seed(tb, names)
	far := -1
	for i := 63; i >= 0 && far < 0; i-- {
		if len(tb.Bucket(i)) > 0 {
			far = i
		}
	}
	p, ok := tb.Farthest(rand.New(rand.NewSource(1)))
	if !ok || tb.BucketOf(p.Name) != far {
		t.Fatalf("farthest pick %+v (ok=%v) not from bucket %d", p, ok, far)
	}
	empty := NewTable("alone", 4)
	if _, ok := empty.Farthest(rand.New(rand.NewSource(1))); ok {
		t.Fatal("empty table produced a farthest peer")
	}
}
