package gossip

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/edge"
	"repro/internal/faults"
	"repro/internal/fed"
	"repro/internal/netem"
	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/pilot"
	"repro/internal/scenario"
	"repro/internal/sim"
)

const (
	testW = 24
	testH = 16
)

var testStart = time.Date(2023, 9, 1, 9, 0, 0, 0, time.UTC)

func testPilotCfg() pilot.Config {
	c := pilot.DefaultConfig(pilot.Linear, testW, testH, 1)
	c.ConvFilters1 = 4
	c.ConvFilters2 = 8
	c.DenseUnits = 16
	return c
}

// gossipSamples produces frames whose single bright column encodes the
// steering label, matching fed's test corpus so star/gossip comparisons
// train on identical data.
func gossipSamples(t testing.TB, n int) []pilot.Sample {
	t.Helper()
	recs := make([]sim.Record, n)
	for i := 0; i < n; i++ {
		f, err := sim.NewFrame(testW, testH, 1)
		if err != nil {
			t.Fatal(err)
		}
		angle := math.Sin(float64(i) / 5)
		col := int((angle + 1) / 2 * float64(testW-1))
		for y := 0; y < testH; y++ {
			f.Set(col, y, 255)
		}
		recs[i] = sim.Record{
			Index: i, Frame: f,
			Steering: angle, Throttle: 0.5,
			Timestamp: time.Unix(1_700_000_000, 0).Add(time.Duration(i) * 50 * time.Millisecond),
		}
	}
	samples, err := pilot.SamplesFromRecords(testPilotCfg(), recs)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func testDeps(t testing.TB, profile string, seed int64) Deps {
	t.Helper()
	d := Deps{
		Net:   netem.NewNet(seed),
		Hub:   edge.NewHub(),
		Store: objstore.New(),
		Obs:   obs.NewObserver(),
		Start: testStart,
	}
	if profile != "" {
		plan, err := faults.NewPlan(profile, seed, testStart)
		if err != nil {
			t.Fatal(err)
		}
		plan.Instrument(d.Obs.Metrics)
		d.Plan = plan
	}
	return d
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.Workers = 3
	cfg.Rounds = 3
	cfg.BatchSize = 8
	return cfg
}

func splitShards(t testing.TB, samples []pilot.Sample, workers int) ([][]pilot.Sample, []pilot.Sample) {
	t.Helper()
	nVal := len(samples) / 5
	val := samples[len(samples)-nVal:]
	shards, err := fed.ShardSamples(samples[:len(samples)-nVal], workers)
	if err != nil {
		t.Fatal(err)
	}
	return shards, val
}

func newTestRun(t testing.TB, cfg Config, deps Deps, nSamples int) *Run {
	t.Helper()
	shards, val := splitShards(t, gossipSamples(t, nSamples), cfg.Workers)
	genesis, err := pilot.New(testPilotCfg())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRun(cfg, deps, genesis, shards, val)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestGossipConvergesLikeStar is the acceptance gate: on a clean fabric
// with full fanout, the fleet-union model must land within 2% of the
// star parameter server's val loss on the same data, seeds, and rounds.
func TestGossipConvergesLikeStar(t *testing.T) {
	samples := gossipSamples(t, 45)

	fcfg := fed.DefaultConfig()
	fcfg.Workers = 3
	fcfg.Rounds = 3
	fcfg.BatchSize = 8
	fshards, fval := splitShards(t, samples, fcfg.Workers)
	fglobal, err := pilot.New(testPilotCfg())
	if err != nil {
		t.Fatal(err)
	}
	fdeps := fed.Deps{Net: netem.NewNet(1), Store: objstore.New(), Obs: obs.NewObserver(), Start: testStart}
	frun, err := fed.NewRun(fcfg, fdeps, fglobal, fshards, fval)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := frun.Execute()
	if err != nil {
		t.Fatal(err)
	}

	cfg := testCfg()
	r := newTestRun(t, cfg, testDeps(t, "", 1), 45)
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != cfg.Rounds {
		t.Fatalf("%d rounds, want %d", len(res.Rounds), cfg.Rounds)
	}
	if fres.FinalValLoss <= 0 || res.FinalFleetValLoss <= 0 {
		t.Fatalf("degenerate losses: star %v gossip %v", fres.FinalValLoss, res.FinalFleetValLoss)
	}
	rel := math.Abs(res.FinalFleetValLoss-fres.FinalValLoss) / fres.FinalValLoss
	if rel > 0.02 {
		t.Fatalf("gossip %.6f vs star %.6f: %.2f%% apart, want <= 2%%",
			res.FinalFleetValLoss, fres.FinalValLoss, 100*rel)
	}
	// Full fanout on a clean fabric disseminates everything every round.
	last := res.Rounds[len(res.Rounds)-1]
	if last.ConvergenceLag != 0 {
		t.Fatalf("clean-run convergence lag %d, want 0", last.ConvergenceLag)
	}
	if res.HeadSyncs != cfg.Rounds {
		t.Fatalf("%d head syncs, want %d", res.HeadSyncs, cfg.Rounds)
	}
	if last.HeadValLoss != last.FleetValLoss {
		t.Fatalf("synced head loss %v != fleet loss %v", last.HeadValLoss, last.FleetValLoss)
	}
}

// gossipTrace executes a faulted run and returns the exported bytes.
func gossipTrace(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := testCfg()
	deps := testDeps(t, "lossy-wan", seed)
	r := newTestRun(t, cfg, deps, 45)
	if _, err := r.Execute(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := deps.Obs.Tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGossipTraceByteDeterministic(t *testing.T) {
	a, b := gossipTrace(t, 11), gossipTrace(t, 11)
	if len(a) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed gossip runs exported different trace bytes")
	}
	if c := gossipTrace(t, 12); bytes.Equal(a, c) {
		t.Fatal("different seeds exported identical traces (suspicious)")
	}
	recs, err := obs.ReadTraceJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"gossip-train": false, "gossip-round": false, "gossip_local_train": false,
		"gossip_exchange": false, "gossip_parcels": false, "gossip_validate": false,
		"netem_transfer": false,
	}
	for _, rec := range recs {
		if _, ok := want[rec.Name]; ok {
			want[rec.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %q span in trace", name)
		}
	}
}

// partitionRuntime loads the checked-in cloud-partition scenario.
func partitionRuntime(t *testing.T, seed int64) *scenario.Runtime {
	t.Helper()
	s, err := scenario.Load("../../scenarios/cloud-partition.scn")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := scenario.NewRuntime(s, seed, testStart)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestGossipSurvivesCloudPartition runs the scenario the star fleet
// cannot: the WAN partitions for good mid-run. Gossip must keep moving
// parcels and improving the fleet model with the head frozen; star must
// stall outright (zero participants, val loss bit-frozen).
func TestGossipSurvivesCloudPartition(t *testing.T) {
	cfg := testCfg()
	cfg.Rounds = 6
	cfg.RoundGap = 15 * time.Second
	deps := testDeps(t, "", 21)
	rt := partitionRuntime(t, 21)
	rt.Start(deps.Obs)
	deps.Plan = rt.Plan()
	rt.Attach(deps.Net)
	r := newTestRun(t, cfg, deps, 45)
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.HeadSyncs == 0 {
		t.Fatal("no head sync succeeded before the partition")
	}
	if res.HeadSyncs >= cfg.Rounds {
		t.Fatalf("%d head syncs in %d rounds: the partition never bit", res.HeadSyncs, cfg.Rounds)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.HeadSynced {
		t.Fatal("final round synced the head through a partitioned WAN")
	}
	// The mesh keeps working: parcels still move, every reachable worker
	// stays caught up, and the fleet model keeps improving past the cut.
	if last.Exchanges == 0 || last.ParcelsMoved == 0 {
		t.Fatalf("final partitioned round moved nothing: %+v", last)
	}
	if last.ConvergenceLag != 0 {
		t.Fatalf("final convergence lag %d, want 0 (peer links are healthy)", last.ConvergenceLag)
	}
	var lastSynced int
	for i, rr := range res.Rounds {
		if rr.HeadSynced {
			lastSynced = i
		}
	}
	if res.FinalFleetValLoss >= res.Rounds[lastSynced].FleetValLoss {
		t.Fatalf("fleet loss did not improve after the partition: %.6f at cut, %.6f final",
			res.Rounds[lastSynced].FleetValLoss, res.FinalFleetValLoss)
	}
	// The head is frozen at its last synced state.
	if last.HeadValLoss != res.Rounds[lastSynced].HeadValLoss {
		t.Fatalf("head loss moved during the partition: %.6f -> %.6f",
			res.Rounds[lastSynced].HeadValLoss, last.HeadValLoss)
	}

	// Star under the same scenario: every upload funnels through the
	// partitioned WAN, so late rounds aggregate nobody and the global
	// model freezes bit-for-bit.
	fcfg := fed.DefaultConfig()
	fcfg.Workers = 3
	fcfg.Rounds = 6
	fcfg.BatchSize = 8
	fcfg.RoundGap = 15 * time.Second
	fdeps := fed.Deps{Net: netem.NewNet(21), Store: objstore.New(), Obs: obs.NewObserver(), Start: testStart}
	frt := partitionRuntime(t, 21)
	frt.Start(fdeps.Obs)
	fdeps.Plan = frt.Plan()
	frt.Attach(fdeps.Net)
	fshards, fval := splitShards(t, gossipSamples(t, 45), fcfg.Workers)
	fglobal, err := pilot.New(testPilotCfg())
	if err != nil {
		t.Fatal(err)
	}
	frun, err := fed.NewRun(fcfg, fdeps, fglobal, fshards, fval)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := frun.Execute()
	if err != nil {
		t.Fatal(err)
	}
	flast := fres.Rounds[len(fres.Rounds)-1]
	fprev := fres.Rounds[len(fres.Rounds)-2]
	if len(flast.Participants) != 0 {
		t.Fatalf("star aggregated %d workers through a partition", len(flast.Participants))
	}
	if flast.ValLoss != fprev.ValLoss {
		t.Fatalf("star val loss moved while stalled: %.6f -> %.6f", fprev.ValLoss, flast.ValLoss)
	}
	if res.FinalFleetValLoss >= fres.FinalValLoss {
		t.Fatalf("gossip (%.6f) did not beat the stalled star (%.6f) under partition",
			res.FinalFleetValLoss, fres.FinalValLoss)
	}
}

// TestGossipChurnRejoin silences one worker mid-run and checks the
// overlay's rejoin story: the silent rounds record it offline, and once
// the window passes the next round's anti-entropy pulls it back level
// with the fleet head version.
func TestGossipChurnRejoin(t *testing.T) {
	cfg := testCfg()
	cfg.Rounds = 5
	cfg.RoundGap = 15 * time.Second
	deps := testDeps(t, "", 5)
	plan := faults.NewScriptedPlan(5, testStart)
	// Rounds start roughly every 15s; this window swallows rounds 1-2.
	plan.AddSilenceWindow("rejoiner", faults.Window{
		Start: testStart.Add(10 * time.Second),
		End:   testStart.Add(40 * time.Second),
	})
	deps.Plan = plan
	r := newTestRun(t, cfg, deps, 45)
	// The scripted device name lands on worker 0.
	if r.workers[0].name != "rejoiner" {
		t.Fatalf("scripted name not adopted: %q", r.workers[0].name)
	}
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	var offlineRounds int
	for _, rr := range res.Rounds {
		if len(rr.Offline) > 0 {
			offlineRounds++
			for _, idx := range rr.Offline {
				if idx != 0 {
					t.Fatalf("round %d: worker %d offline, only 0 was scripted", rr.Round, idx)
				}
			}
		}
	}
	if offlineRounds == 0 {
		t.Fatal("the silence window never took the worker offline")
	}
	if offlineRounds >= cfg.Rounds {
		t.Fatal("worker never rejoined")
	}
	last := res.Rounds[len(res.Rounds)-1]
	if len(last.Offline) != 0 {
		t.Fatalf("final round still offline: %+v", last.Offline)
	}
	if last.ConvergenceLag != 0 {
		t.Fatalf("rejoiner still lagging %d rounds at the end", last.ConvergenceLag)
	}
	// The rejoiner holds the complete fleet history again.
	for round, keys := range r.produced {
		if !r.workers[0].store.HasAll(keys) {
			t.Fatalf("rejoiner missing parcels from round %d after rejoin", round)
		}
	}
}

// TestGossipFreeRiders checks that store-and-forward-only members ride
// the overlay without producing parcels or stalling convergence.
func TestGossipFreeRiders(t *testing.T) {
	cfg := testCfg()
	cfg.Workers = 4
	cfg.FreeRiders = 1
	deps := testDeps(t, "", 9)
	r := newTestRun(t, cfg, deps, 60)
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res.Rounds {
		for _, idx := range rr.Trained {
			if idx == 0 {
				t.Fatalf("round %d: free rider trained", rr.Round)
			}
		}
		if len(rr.Trained) != cfg.Workers-1 {
			t.Fatalf("round %d: %d trainers, want %d", rr.Round, len(rr.Trained), cfg.Workers-1)
		}
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.ConvergenceLag != 0 {
		t.Fatalf("free-rider fleet ended with lag %d", last.ConvergenceLag)
	}
	// The free rider carries the full parcel history all the same.
	for round, keys := range r.produced {
		if !r.workers[0].store.HasAll(keys) {
			t.Fatalf("free rider missing round-%d parcels", round)
		}
	}
}

// TestRebuildOrderIndependent is the determinism keystone: two replicas
// holding the same parcel set rebuild to bit-identical weights no
// matter what order the parcels arrived in.
func TestRebuildOrderIndependent(t *testing.T) {
	cfg := testCfg()
	r := newTestRun(t, cfg, testDeps(t, "", 3), 45)

	// Manufacture a parcel history with adversarial float values.
	rng := rand.New(rand.NewSource(17))
	var parcels []*Parcel
	for round := 0; round < 4; round++ {
		for origin := 0; origin < 3; origin++ {
			vals := make([][]float64, len(r.initVals))
			for i, init := range r.initVals {
				tv := make([]float64, len(init))
				for j := range tv {
					tv[j] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(30)-25)
				}
				vals[i] = tv
			}
			parcels = append(parcels, &Parcel{Origin: origin, Round: round, WireBytes: 8, Values: vals})
		}
	}
	for trial := 0; trial < 4; trial++ {
		a, b := NewStore(), NewStore()
		for _, i := range rng.Perm(len(parcels)) {
			a.Put(parcels[i])
		}
		for _, i := range rng.Perm(len(parcels)) {
			b.Put(parcels[i])
		}
		if err := r.rebuild(r.fleet, a); err != nil {
			t.Fatal(err)
		}
		fromA := snapshotWeights(r.fleet)
		if err := r.rebuild(r.fleet, b); err != nil {
			t.Fatal(err)
		}
		fromB := snapshotWeights(r.fleet)
		for i := range fromA {
			for j := range fromA[i] {
				if math.Float64bits(fromA[i][j]) != math.Float64bits(fromB[i][j]) {
					t.Fatalf("trial %d: rebuild diverged at param %d[%d]: %x vs %x",
						trial, i, j, math.Float64bits(fromA[i][j]), math.Float64bits(fromB[i][j]))
				}
			}
		}
	}
}

// TestGossipCheckpointLandsInStore verifies the head's model reaches
// objstore once synced, with the round recorded in metadata.
func TestGossipCheckpointLandsInStore(t *testing.T) {
	cfg := testCfg()
	deps := testDeps(t, "", 2)
	r := newTestRun(t, cfg, deps, 45)
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointContainer == "" {
		t.Fatal("no checkpoint location reported")
	}
	data, info, err := deps.Store.Get(res.CheckpointContainer, res.CheckpointObject)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty checkpoint")
	}
	if info.Metadata["gossip-round"] == "" {
		t.Fatal("checkpoint missing gossip-round metadata")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Workers = 1 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.Fanout = -1 },
		func(c *Config) { c.BucketSize = -2 },
		func(c *Config) { c.FreeRiders = -1 },
		func(c *Config) { c.FreeRiders = 4 },
		func(c *Config) { c.LocalEpochs = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.RoundGap = -time.Second },
		func(c *Config) { c.TopKFrac = 1.5 },
		func(c *Config) { c.Compress = "zstd" },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}
