package gossip

import (
	"math/rand"
	"testing"
)

func testParcel(origin, round int) *Parcel {
	return &Parcel{
		Origin: origin, Round: round, WireBytes: 64,
		Values: [][]float64{{float64(origin), float64(round)}},
	}
}

func TestStoreCanonicalOrder(t *testing.T) {
	keys := []Key{
		{Origin: 2, Round: 1}, {Origin: 0, Round: 2}, {Origin: 1, Round: 0},
		{Origin: 0, Round: 0}, {Origin: 2, Round: 0}, {Origin: 1, Round: 2},
	}
	// Whatever order parcels arrive in, Keys comes back (round, origin).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		s := NewStore()
		perm := rng.Perm(len(keys))
		for _, i := range perm {
			if !s.Put(testParcel(keys[i].Origin, keys[i].Round)) {
				t.Fatal("fresh put reported duplicate")
			}
		}
		got := s.Keys()
		for i := 1; i < len(got); i++ {
			if !keyLess(got[i-1], got[i]) {
				t.Fatalf("trial %d: keys out of canonical order at %d: %+v", trial, i, got)
			}
		}
	}
}

func TestStorePutIdempotent(t *testing.T) {
	s := NewStore()
	p := testParcel(1, 4)
	if !s.Put(p) {
		t.Fatal("first put rejected")
	}
	if s.Put(testParcel(1, 4)) {
		t.Fatal("re-delivery reported as new")
	}
	if s.Len() != 1 {
		t.Fatalf("len %d after duplicate put, want 1", s.Len())
	}
	if got := s.Get(Key{Origin: 1, Round: 4}); got != p {
		t.Fatal("duplicate put replaced the original parcel")
	}
}

func TestStoreMissingAndHasAll(t *testing.T) {
	s := NewStore()
	s.Put(testParcel(0, 0))
	s.Put(testParcel(1, 0))
	digest := []Key{
		{Origin: 0, Round: 0}, {Origin: 1, Round: 0},
		{Origin: 0, Round: 1}, {Origin: 1, Round: 1},
	}
	miss := s.Missing(digest)
	if len(miss) != 2 || miss[0] != (Key{Origin: 0, Round: 1}) || miss[1] != (Key{Origin: 1, Round: 1}) {
		t.Fatalf("missing = %+v", miss)
	}
	if s.HasAll(digest) {
		t.Fatal("HasAll true with two keys absent")
	}
	if !s.HasAll(digest[:2]) {
		t.Fatal("HasAll false for held keys")
	}
	if got := s.Missing(nil); len(got) != 0 {
		t.Fatalf("empty digest produced wants: %+v", got)
	}
}

func TestParcelValidate(t *testing.T) {
	cases := []struct {
		name string
		p    *Parcel
		ok   bool
	}{
		{"nil", nil, false},
		{"good", testParcel(0, 0), true},
		{"negative origin", &Parcel{Origin: -1, Round: 0, WireBytes: 8, Values: [][]float64{{1}}}, false},
		{"negative round", &Parcel{Origin: 0, Round: -1, WireBytes: 8, Values: [][]float64{{1}}}, false},
		{"no values", &Parcel{Origin: 0, Round: 0, WireBytes: 8}, false},
		{"free transfer", &Parcel{Origin: 0, Round: 0, WireBytes: 0, Values: [][]float64{{1}}}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestDigestBytesScalesWithHistory(t *testing.T) {
	if DigestBytes(0) != 16 {
		t.Fatalf("empty digest bills %d, want the 16-byte header", DigestBytes(0))
	}
	if DigestBytes(10)-DigestBytes(9) != 12 {
		t.Fatal("digest marginal cost is not 12 bytes per key")
	}
}
