// Package obs is the reproduction's zero-dependency observability layer:
// hierarchical spans with deterministic trace/span IDs, cross-subsystem
// context propagation (SpanContext, in-process or via the X-Trace-Context
// header) and sorted JSONL trace export, plus a lock-striped,
// atomic-update metrics registry (counters, gauges, fixed-bucket
// histograms with quantile estimates and trace exemplars) with a
// Prometheus-style text exposition writer, a /debug/obs dashboard
// handler, and an offline trace-report renderer.
//
// The package exists because the paper's pipeline (Fig. 1: collect →
// clean → train → evaluate) is meant to be *inspected* by students, and
// because the ROADMAP's performance work needs a way to see where wall
// clock and simulated time go. Two design rules keep instrumentation
// cheap to thread through the codebase:
//
//  1. Everything is nil-safe. A nil *Tracer, *Span, *Counter, *Gauge, or
//     *Histogram is a valid no-op, so instrumented code calls the
//     observability hooks unconditionally and uninstrumented runs pay
//     one nil check per event.
//  2. Clocks are injectable. The simulators in this repo run on virtual
//     time (netem transfers, testbed provisioning); spans carry both the
//     wall-clock interval measured by the tracer's clock and any number
//     of explicitly recorded simulated durations as attributes.
package obs

import "time"

// Clock yields the current time; tests and virtual-time harnesses inject
// their own.
type Clock func() time.Time

// Observer bundles a tracer and a metrics registry, the pair every
// instrumented layer accepts. The zero value (both nil) is a valid no-op
// observer.
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry
}

// NewObserver returns an observer with a fresh tracer and registry.
func NewObserver() Observer {
	return Observer{Tracer: NewTracer(), Metrics: NewRegistry()}
}
