package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// This file benchmarks the sharded lock-striped registry against a
// faithful copy of the pre-sharding implementation (single registry
// mutex, per-instrument mutexes, sort.Slice+fmt series keys), preserved
// below as the "mutex" variant. The interesting row is g8: eight
// goroutines hammering the same hot series through registry lookups,
// the coordinator-side access pattern of a 10k-worker fleet.

type oldCounter struct {
	mu sync.Mutex
	v  float64
}

func (c *oldCounter) Inc() {
	c.mu.Lock()
	c.v++
	c.mu.Unlock()
}

type oldHistogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func (h *oldHistogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += v
	h.count++
}

type oldRegistry struct {
	mu         sync.Mutex
	counters   map[string]*oldCounter
	histograms map[string]*oldHistogram
}

func newOldRegistry() *oldRegistry {
	return &oldRegistry{
		counters:   map[string]*oldCounter{},
		histograms: map[string]*oldHistogram{},
	}
}

func oldSeriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *oldRegistry) Counter(name string, labels ...Label) *oldCounter {
	key := oldSeriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &oldCounter{}
		r.counters[key] = c
	}
	return c
}

func (r *oldRegistry) Histogram(name string, bounds []float64, labels ...Label) *oldHistogram {
	key := oldSeriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &oldHistogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.histograms[key] = h
	}
	return h
}

// contend runs b.N ops split across g goroutines, each op being the hot
// coordinator mix: one unlabeled counter bump plus one labeled histogram
// observation, both through registry lookups (the realistic pattern —
// call sites rarely cache instruments).
func contend(b *testing.B, g int, op func(i int)) {
	b.ReportAllocs()
	var wg sync.WaitGroup
	per := b.N / g
	b.ResetTimer()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op(i)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkRegistryContention(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		g := g
		b.Run(fmt.Sprintf("mutex/g%d", g), func(b *testing.B) {
			r := newOldRegistry()
			contend(b, g, func(i int) {
				r.Counter("fed_ops_total").Inc()
				r.Histogram("fed_op_seconds", DefSecondsBuckets,
					L("stage", "upload")).Observe(float64(i%100) / 100)
			})
		})
		b.Run(fmt.Sprintf("sharded/g%d", g), func(b *testing.B) {
			r := NewRegistry()
			contend(b, g, func(i int) {
				r.Counter("fed_ops_total").Inc()
				r.Histogram("fed_op_seconds", DefSecondsBuckets,
					L("stage", "upload")).Observe(float64(i%100) / 100)
			})
		})
	}
}
