package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanHierarchyAndJSONL(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		now = now.Add(250 * time.Millisecond)
		return now
	}
	tr := NewTracerWithClock(clock)
	root := tr.Start("pipeline")
	c := root.Child("collect")
	c.SetAttr("records", 42)
	c.SetAttr("drive", 3*time.Second) // durations export as seconds
	c.SetSimDuration("transfer", 1500*time.Millisecond)
	c.End()
	c.End() // double-end is a no-op
	root.End()

	if got := len(tr.Finished()); got != 2 {
		t.Fatalf("finished spans = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var recs []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, m)
	}
	if len(recs) != 2 {
		t.Fatalf("JSONL lines = %d, want 2", len(recs))
	}
	// Export is sorted by start time: the root started first.
	parent, child := recs[0], recs[1]
	if parent["name"] != "pipeline" || child["name"] != "collect" {
		t.Fatalf("unexpected span order: %v then %v", parent["name"], child["name"])
	}
	if child["parent"] != parent["id"] {
		t.Errorf("child parent = %v, want %v", child["parent"], parent["id"])
	}
	if parent["v"].(float64) != TraceSchemaVersion {
		t.Errorf("schema version = %v, want %d", parent["v"], TraceSchemaVersion)
	}
	if parent["trace"] == "" || parent["trace"] != child["trace"] {
		t.Errorf("trace IDs: parent %v child %v, want equal and non-empty",
			parent["trace"], child["trace"])
	}
	if _, hasParent := parent["parent"]; hasParent {
		t.Errorf("root span should omit parent, got %v", parent["parent"])
	}
	attrs := child["attrs"].(map[string]any)
	if attrs["records"].(float64) != 42 {
		t.Errorf("records attr = %v", attrs["records"])
	}
	if attrs["drive"].(float64) != 3 {
		t.Errorf("drive attr = %v, want 3 (seconds)", attrs["drive"])
	}
	if attrs["sim_transfer_s"].(float64) != 1.5 {
		t.Errorf("sim_transfer_s = %v, want 1.5", attrs["sim_transfer_s"])
	}
	if child["dur_ms"].(float64) != 250 {
		t.Errorf("child dur_ms = %v, want 250", child["dur_ms"])
	}
}

func TestNilObservabilityIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.SetAttr("k", 1)
	sp.Child("y").End()
	sp.EndErr(nil)
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h", DefSecondsBuckets).Observe(1)
	r.Help("c", "nope")
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", L("path", "/x"))
	b := r.Counter("hits", L("path", "/x"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	if c := r.Counter("hits", L("path", "/y")); c == a {
		t.Fatal("different labels must return a different counter")
	}
	// Label order must not matter.
	g1 := r.Gauge("temp", L("a", "1"), L("b", "2"))
	g2 := r.Gauge("temp", L("b", "2"), L("a", "1"))
	if g1 != g2 {
		t.Fatal("label order changed series identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.55 {
		t.Fatalf("sum = %v, want 55.55", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 55.55",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromDeterministicAndLabeled(t *testing.T) {
	r := NewRegistry()
	r.Help("edge_devices_live", "connected edge devices")
	r.Gauge("edge_devices_live").Set(3)
	r.Counter("net_transfer_bytes_total", L("link", "campus-wan")).Add(1024)
	r.Histogram("train_epoch_seconds", []float64{1, 10}, L("gpu", "V100")).Observe(2)

	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition output not deterministic")
	}
	for _, want := range []string{
		"# HELP edge_devices_live connected edge devices",
		"# TYPE edge_devices_live gauge",
		"edge_devices_live 3",
		`net_transfer_bytes_total{link="campus-wan"} 1024`,
		`train_epoch_seconds_bucket{gpu="V100",le="10"} 1`,
		`train_epoch_seconds_count{gpu="V100"} 1`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, a.String())
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c", L("w", "x")).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", DefSecondsBuckets).Observe(float64(j))
				sp := root.Child("op")
				sp.SetAttr("j", j)
				sp.End()
			}
		}()
	}
	// Concurrent exports while writers are running.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.WriteProm(&bytes.Buffer{})
			_ = tr.WriteJSONL(&bytes.Buffer{})
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	root.End()
	if got := r.Counter("c", L("w", "x")).Value(); got != 4000 {
		t.Fatalf("counter = %v, want 4000", got)
	}
	if got := r.Histogram("h", DefSecondsBuckets).Count(); got != 4000 {
		t.Fatalf("histogram count = %v, want 4000", got)
	}
	if got := len(tr.Finished()); got != 4001 {
		t.Fatalf("finished spans = %d, want 4001", got)
	}
}

func TestObserverZeroValue(t *testing.T) {
	var o Observer
	sp := o.Tracer.Start("noop")
	sp.End()
	o.Metrics.Counter("x").Inc()
	if o.Metrics.Counter("x").Value() != 0 {
		t.Fatal("zero-value observer must be inert")
	}
}
