package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceSchemaVersion is stamped on every exported JSONL record ("v") so
// downstream tools can detect format drift; bump it when the record shape
// changes. The golden-file test in this package pins the v1 layout.
const TraceSchemaVersion = 1

// TraceHeader carries a serialized SpanContext across process (or
// simulated-node) boundaries, the way W3C traceparent does for real
// distributed systems.
const TraceHeader = "X-Trace-Context"

// SpanContext is the propagatable identity of a span: enough to continue
// its trace on another "node" without sharing the *Span itself. The zero
// value is invalid and means "no trace in progress".
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context identifies a live trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// String serializes the context as "traceID:spanID" ("" when invalid).
func (sc SpanContext) String() string {
	if !sc.Valid() {
		return ""
	}
	return sc.TraceID + ":" + sc.SpanID
}

// ParseSpanContext inverts String.
func ParseSpanContext(s string) (SpanContext, bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: s[:i], SpanID: s[i+1:]}, true
}

// Inject writes the context into an HTTP header set (a no-op when
// invalid), for clients calling a traced service.
func (sc SpanContext) Inject(h http.Header) {
	if sc.Valid() {
		h.Set(TraceHeader, sc.String())
	}
}

// ContextFromRequest extracts a propagated span context from an incoming
// request ({} when absent or malformed).
func ContextFromRequest(r *http.Request) SpanContext {
	sc, _ := ParseSpanContext(r.Header.Get(TraceHeader))
	return sc
}

// Tracer produces hierarchical spans and collects the finished ones for
// export. It is safe for concurrent use; a nil *Tracer is a no-op.
//
// Span and trace IDs are content-derived (a hash of the name path and a
// per-parent sibling sequence number), not random: a run that creates its
// spans deterministically gets deterministic IDs, so two same-seed runs
// export byte-identical trace files.
type Tracer struct {
	mu        sync.Mutex
	clock     Clock
	rootSeq   map[string]int // root span name -> count started
	remoteSeq map[string]int // remote parent spanID/name -> count started
	finished  []*Span
}

// NewTracer builds a tracer on the wall clock.
func NewTracer() *Tracer { return NewTracerWithClock(nil) }

// NewTracerWithClock builds a tracer on an injected clock, so simulated
// time can drive span intervals in virtual-time experiments.
func NewTracerWithClock(c Clock) *Tracer {
	if c == nil {
		c = time.Now
	}
	return &Tracer{clock: c, rootSeq: map[string]int{}, remoteSeq: map[string]int{}}
}

// SetClock swaps the tracer's clock. Virtual-time harnesses that only
// learn their clock after the observer exists (fed runs resolve theirs
// from the fault plan) re-clock the tracer before opening spans, so span
// start/end times are deterministic simulated instants.
func (t *Tracer) SetClock(c Clock) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	t.clock = c
	t.mu.Unlock()
}

// Span is one timed operation. Attributes are set between Start and End;
// children link to their parent by ID and share its trace ID. A nil *Span
// is a no-op.
type Span struct {
	tracer    *Tracer
	ID        string
	TraceID   string
	ParentID  string
	Name      string
	StartTime time.Time
	EndTime   time.Time

	mu       sync.Mutex
	attrs    map[string]any
	childSeq map[string]int
	ended    bool
}

// hashID derives a compact deterministic ID from a seed string.
func hashID(prefix, seed string) string {
	h := fnv.New64a()
	io.WriteString(h, seed)
	return fmt.Sprintf("%s%012x", prefix, h.Sum64()&0xffffffffffff)
}

// Start opens a root span, beginning a new trace.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	seq := t.rootSeq[name]
	t.rootSeq[name]++
	now := t.clock()
	t.mu.Unlock()
	trace := hashID("t", fmt.Sprintf("%s#%d", name, seq))
	id := hashID("s", fmt.Sprintf("%s/%s#%d", trace, name, seq))
	return &Span{tracer: t, ID: id, TraceID: trace, Name: name, StartTime: now, attrs: map[string]any{}}
}

// StartWith opens a span under a propagated context — the receiving side
// of cross-subsystem propagation. An invalid context starts a fresh root
// trace instead, so callers thread contexts through unconditionally.
func (t *Tracer) StartWith(name string, sc SpanContext) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.Start(name)
	}
	key := sc.SpanID + "/" + name
	t.mu.Lock()
	seq := t.remoteSeq[key]
	t.remoteSeq[key]++
	now := t.clock()
	t.mu.Unlock()
	id := hashID("s", fmt.Sprintf("r/%s#%d", key, seq))
	return &Span{tracer: t, ID: id, TraceID: sc.TraceID, ParentID: sc.SpanID,
		Name: name, StartTime: now, attrs: map[string]any{}}
}

// Child opens a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.childSeq == nil {
		s.childSeq = map[string]int{}
	}
	seq := s.childSeq[name]
	s.childSeq[name]++
	s.mu.Unlock()
	t := s.tracer
	t.mu.Lock()
	now := t.clock()
	t.mu.Unlock()
	id := hashID("s", fmt.Sprintf("%s/%s#%d", s.ID, name, seq))
	return &Span{tracer: t, ID: id, TraceID: s.TraceID, ParentID: s.ID,
		Name: name, StartTime: now, attrs: map[string]any{}}
}

// Context returns the span's propagatable identity ({} for nil spans), to
// hand to another subsystem that continues the trace via StartWith.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.ID}
}

// SetAttr records a key/value attribute on the span. Values should be
// JSON-encodable; time.Duration values are exported in seconds.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := value.(time.Duration); ok {
		value = d.Seconds()
	}
	s.attrs[key] = value
}

// SetSimDuration records a simulated (virtual-time) duration attribute
// alongside the span's wall-clock interval, exported in seconds under
// "sim_<name>_s".
func (s *Span) SetSimDuration(name string, d time.Duration) {
	s.SetAttr("sim_"+name+"_s", d.Seconds())
}

// End closes the span and hands it to the tracer for export. Ending a
// span twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.mu.Unlock()
	t := s.tracer
	t.mu.Lock()
	s.EndTime = t.clock()
	t.finished = append(t.finished, s)
	t.mu.Unlock()
}

// EndErr closes the span, recording err (if non-nil) as an "error"
// attribute first.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr("error", err.Error())
	}
	s.End()
}

// Attr returns the attribute stored under key (nil if absent or if the
// span is nil).
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Finished returns the finished spans in end order (snapshot copy).
func (t *Tracer) Finished() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.finished))
	copy(out, t.finished)
	return out
}

// spanRecord is the JSONL wire form of a finished span (trace schema v1).
type spanRecord struct {
	V      int            `json:"v"`
	Trace  string         `json:"trace"`
	ID     string         `json:"id"`
	Parent string         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  string         `json:"start"`
	DurMS  float64        `json:"dur_ms"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL exports every finished span as one JSON object per line,
// sorted by (start time, span ID) rather than finish order: concurrent
// span finishes race for slots in the finished list, and the sort makes
// the file's byte layout a function of what the run *did*, not how the
// scheduler interleaved it. Attribute maps are copied under the span
// lock, so export is safe while other spans are still running.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.Finished()
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].StartTime.Equal(spans[j].StartTime) {
			return spans[i].StartTime.Before(spans[j].StartTime)
		}
		return spans[i].ID < spans[j].ID
	})
	enc := json.NewEncoder(w)
	for _, s := range spans {
		s.mu.Lock()
		attrs := make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
		s.mu.Unlock()
		rec := spanRecord{
			V:      TraceSchemaVersion,
			Trace:  s.TraceID,
			ID:     s.ID,
			Parent: s.ParentID,
			Name:   s.Name,
			Start:  s.StartTime.UTC().Format(time.RFC3339Nano),
			DurMS:  float64(s.EndTime.Sub(s.StartTime)) / float64(time.Millisecond),
			Attrs:  attrs,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// SpanNames returns the names of finished spans sorted alphabetically
// (handy in tests).
func (t *Tracer) SpanNames() []string {
	var names []string
	for _, s := range t.Finished() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}
