package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer produces hierarchical spans and collects the finished ones for
// export. It is safe for concurrent use; a nil *Tracer is a no-op.
type Tracer struct {
	mu       sync.Mutex
	clock    Clock
	nextID   int
	finished []*Span
}

// NewTracer builds a tracer on the wall clock.
func NewTracer() *Tracer { return &Tracer{clock: time.Now} }

// NewTracerWithClock builds a tracer on an injected clock, so simulated
// time can drive span intervals in virtual-time experiments.
func NewTracerWithClock(c Clock) *Tracer {
	if c == nil {
		c = time.Now
	}
	return &Tracer{clock: c}
}

// Span is one timed operation. Attributes are set between Start and End;
// children link to their parent by ID. A nil *Span is a no-op.
type Span struct {
	tracer    *Tracer
	ID        string
	ParentID  string
	Name      string
	StartTime time.Time
	EndTime   time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	return t.newSpan(name, "")
}

func (t *Tracer) newSpan(name, parent string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := fmt.Sprintf("s%04d", t.nextID)
	now := t.clock()
	t.mu.Unlock()
	return &Span{tracer: t, ID: id, ParentID: parent, Name: name, StartTime: now, attrs: map[string]any{}}
}

// Child opens a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(name, s.ID)
}

// SetAttr records a key/value attribute on the span. Values should be
// JSON-encodable; time.Duration values are exported in seconds.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := value.(time.Duration); ok {
		value = d.Seconds()
	}
	s.attrs[key] = value
}

// SetSimDuration records a simulated (virtual-time) duration attribute
// alongside the span's wall-clock interval, exported in seconds under
// "sim_<name>_s".
func (s *Span) SetSimDuration(name string, d time.Duration) {
	s.SetAttr("sim_"+name+"_s", d.Seconds())
}

// End closes the span and hands it to the tracer for export. Ending a
// span twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.mu.Unlock()
	t := s.tracer
	t.mu.Lock()
	s.EndTime = t.clock()
	t.finished = append(t.finished, s)
	t.mu.Unlock()
}

// EndErr closes the span, recording err (if non-nil) as an "error"
// attribute first.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr("error", err.Error())
	}
	s.End()
}

// Attr returns the attribute stored under key (nil if absent or if the
// span is nil).
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Finished returns the finished spans in end order (snapshot copy).
func (t *Tracer) Finished() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.finished))
	copy(out, t.finished)
	return out
}

// spanRecord is the JSONL wire form of a finished span.
type spanRecord struct {
	ID     string         `json:"id"`
	Parent string         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  string         `json:"start"`
	DurMS  float64        `json:"dur_ms"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL exports every finished span as one JSON object per line.
// Attribute maps are copied under the span lock, so export is safe while
// other spans are still running.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, s := range t.Finished() {
		s.mu.Lock()
		attrs := make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
		s.mu.Unlock()
		rec := spanRecord{
			ID:     s.ID,
			Parent: s.ParentID,
			Name:   s.Name,
			Start:  s.StartTime.UTC().Format(time.RFC3339Nano),
			DurMS:  float64(s.EndTime.Sub(s.StartTime)) / float64(time.Millisecond),
			Attrs:  attrs,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// SpanNames returns the names of finished spans sorted alphabetically
// (handy in tests).
func (t *Tracer) SpanNames() []string {
	var names []string
	for _, s := range t.Finished() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}
