package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"time"
)

// debugTraceLimit caps how many recent traces the dashboard renders; the
// tracer may hold thousands of finished spans in a long run.
const debugTraceLimit = 8

// DebugHandler serves the /debug/obs dashboard for a fixed observer.
func DebugHandler(o Observer) http.Handler {
	return DynamicDebugHandler(func() Observer { return o })
}

// DynamicDebugHandler serves the /debug/obs dashboard, resolving the
// observer per request — for services whose tracer is attached after the
// mux is built. GET renders an HTML dashboard (metrics snapshot tables
// plus a span-timeline waterfall of recent traces); GET ?format=json
// returns the same data as deterministic JSON; other methods get 405.
func DynamicDebugHandler(get func() Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		o := get()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			writeDebugJSON(w, o)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeDebugHTML(w, o)
	})
}

// debugHistogram is the JSON form of one histogram series on the debug
// endpoint.
type debugHistogram struct {
	Count    uint64  `json:"count"`
	Sum      float64 `json:"sum"`
	P50      float64 `json:"p50"`
	P90      float64 `json:"p90"`
	P99      float64 `json:"p99"`
	Exemplar string  `json:"exemplar,omitempty"` // trace ID from the slowest tagged bucket
}

type debugSpan struct {
	ID     string  `json:"id"`
	Parent string  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Start  string  `json:"start"`
	DurMS  float64 `json:"dur_ms"`
}

type debugTrace struct {
	Trace string      `json:"trace"`
	Spans []debugSpan `json:"spans"`
}

// slowestExemplar returns the trace ID tagged on the highest non-empty
// exemplar bucket — the trace behind the worst observed latency.
func slowestExemplar(h *Histogram) string {
	ex := h.Exemplars()
	for i := len(ex) - 1; i >= 0; i-- {
		if ex[i].TraceID != "" {
			return ex[i].TraceID
		}
	}
	return ""
}

// recentTraces groups finished spans by trace and returns the last
// debugTraceLimit traces ordered by root start time (spans within each
// trace sorted by (start, ID), same as the JSONL export).
func recentTraces(t *Tracer) []debugTrace {
	spans := t.Finished()
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].StartTime.Equal(spans[j].StartTime) {
			return spans[i].StartTime.Before(spans[j].StartTime)
		}
		return spans[i].ID < spans[j].ID
	})
	byTrace := map[string][]*Span{}
	var order []string // trace IDs by first span start
	for _, s := range spans {
		if _, ok := byTrace[s.TraceID]; !ok {
			order = append(order, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	if len(order) > debugTraceLimit {
		order = order[len(order)-debugTraceLimit:]
	}
	out := make([]debugTrace, 0, len(order))
	for _, id := range order {
		dt := debugTrace{Trace: id}
		for _, s := range byTrace[id] {
			dt.Spans = append(dt.Spans, debugSpan{
				ID: s.ID, Parent: s.ParentID, Name: s.Name,
				Start: s.StartTime.UTC().Format(time.RFC3339Nano),
				DurMS: float64(s.EndTime.Sub(s.StartTime)) / float64(time.Millisecond),
			})
		}
		out = append(out, dt)
	}
	return out
}

func writeDebugJSON(w http.ResponseWriter, o Observer) {
	snap := o.Metrics.Snapshot()
	hists := map[string]debugHistogram{}
	if o.Metrics != nil {
		_, _, hs := o.Metrics.gather()
		for k, h := range hs {
			q := snap.HistQuantiles[k]
			hists[k] = debugHistogram{
				Count: h.Count(), Sum: h.Sum(),
				P50: q.P50, P90: q.P90, P99: q.P99,
				Exemplar: slowestExemplar(h),
			}
		}
	}
	payload := struct {
		Schema     int                       `json:"schema"`
		Counters   map[string]float64        `json:"counters"`
		Gauges     map[string]float64        `json:"gauges"`
		Histograms map[string]debugHistogram `json:"histograms"`
		Traces     []debugTrace              `json:"traces"`
	}{
		Schema:     TraceSchemaVersion,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: hists,
		Traces:     recentTraces(o.Tracer),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload) // map keys marshal sorted, so the body is deterministic
}

func writeDebugHTML(w http.ResponseWriter, o Observer) {
	fmt.Fprint(w, `<!doctype html><title>obs dashboard</title>
<style>
body{font-family:monospace;margin:1.5em;background:#fafafa}
table{border-collapse:collapse;margin:.5em 0 1.5em}
td,th{border:1px solid #bbb;padding:2px 8px;text-align:left}
th{background:#eee}
.wf{position:relative;background:#eee;height:14px;margin:1px 0;width:40em}
.wf div{position:absolute;top:1px;bottom:1px;background:#48a;min-width:2px}
.wf span{position:absolute;left:0;font-size:11px;line-height:14px;padding-left:2px;color:#222}
small{color:#666}
</style>
<h1>obs dashboard</h1>
<p><small>live metrics snapshot + recent trace waterfalls ·
<a href="?format=json">json</a></small></p>`)

	snap := o.Metrics.Snapshot()
	sortedKeys := func(n int, each func(yield func(string))) []string {
		keys := make([]string, 0, n)
		each(func(k string) { keys = append(keys, k) })
		sort.Strings(keys)
		return keys
	}

	fmt.Fprint(w, "<h2>counters</h2><table><tr><th>series</th><th>value</th></tr>")
	for _, k := range sortedKeys(len(snap.Counters), func(y func(string)) {
		for k := range snap.Counters {
			y(k)
		}
	}) {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>",
			html.EscapeString(k), formatValue(snap.Counters[k]))
	}
	fmt.Fprint(w, "</table>")

	fmt.Fprint(w, "<h2>gauges</h2><table><tr><th>series</th><th>value</th></tr>")
	for _, k := range sortedKeys(len(snap.Gauges), func(y func(string)) {
		for k := range snap.Gauges {
			y(k)
		}
	}) {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>",
			html.EscapeString(k), formatValue(snap.Gauges[k]))
	}
	fmt.Fprint(w, "</table>")

	fmt.Fprint(w, `<h2>histograms</h2><table><tr><th>series</th><th>count</th>
<th>sum</th><th>p50</th><th>p90</th><th>p99</th><th>exemplar</th></tr>`)
	var histKeys []string
	var exemplars map[string]string
	if o.Metrics != nil {
		_, _, hs := o.Metrics.gather()
		exemplars = make(map[string]string, len(hs))
		for k, h := range hs {
			histKeys = append(histKeys, k)
			exemplars[k] = slowestExemplar(h)
		}
	}
	sort.Strings(histKeys)
	for _, k := range histKeys {
		q := snap.HistQuantiles[k]
		fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
			html.EscapeString(k), snap.HistCounts[k], formatValue(snap.HistSums[k]),
			formatValue(q.P50), formatValue(q.P90), formatValue(q.P99),
			html.EscapeString(exemplars[k]))
	}
	fmt.Fprint(w, "</table>")

	fmt.Fprint(w, "<h2>recent traces</h2>")
	traces := recentTraces(o.Tracer)
	if len(traces) == 0 {
		fmt.Fprint(w, "<p><small>no finished spans yet</small></p>")
	}
	for _, dt := range traces {
		fmt.Fprintf(w, "<h3>trace %s</h3>", html.EscapeString(dt.Trace))
		t0, _ := time.Parse(time.RFC3339Nano, dt.Spans[0].Start)
		var total float64 // ms spanned by the whole trace
		for _, s := range dt.Spans {
			ts, _ := time.Parse(time.RFC3339Nano, s.Start)
			if end := float64(ts.Sub(t0))/float64(time.Millisecond) + s.DurMS; end > total {
				total = end
			}
		}
		if total <= 0 {
			total = 1
		}
		for _, s := range dt.Spans {
			ts, _ := time.Parse(time.RFC3339Nano, s.Start)
			off := float64(ts.Sub(t0)) / float64(time.Millisecond)
			left := off / total * 100
			width := s.DurMS / total * 100
			fmt.Fprintf(w,
				`<div class="wf"><div style="left:%.2f%%;width:%.2f%%"></div><span>%s %.2fms</span></div>`+"\n",
				left, width, html.EscapeString(s.Name), s.DurMS)
		}
	}
}
