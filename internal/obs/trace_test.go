package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fixedClock ticks a deterministic amount per call.
func fixedClock(step time.Duration) Clock {
	now := time.Unix(1_700_000_000, 0).UTC()
	return func() time.Time {
		now = now.Add(step)
		return now
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: "t1234", SpanID: "s5678"}
	if !sc.Valid() {
		t.Fatal("context should be valid")
	}
	got, ok := ParseSpanContext(sc.String())
	if !ok || got != sc {
		t.Fatalf("ParseSpanContext(%q) = %v, %v", sc.String(), got, ok)
	}
	for _, bad := range []string{"", "noseparator", ":leading", "trailing:"} {
		if _, ok := ParseSpanContext(bad); ok {
			t.Errorf("ParseSpanContext(%q) accepted", bad)
		}
	}
	if (SpanContext{}).Valid() {
		t.Fatal("zero context must be invalid")
	}
	if (SpanContext{}).String() != "" {
		t.Fatal("zero context must serialize empty")
	}
}

func TestHTTPPropagation(t *testing.T) {
	tr := NewTracerWithClock(fixedClock(time.Millisecond))
	client := tr.Start("client-op")

	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	client.Context().Inject(req.Header)
	if h := req.Header.Get(TraceHeader); h == "" {
		t.Fatal("Inject wrote no header")
	}

	got := ContextFromRequest(req)
	if got != client.Context() {
		t.Fatalf("extracted %v, want %v", got, client.Context())
	}
	server := tr.StartWith("server-op", got)
	if server.TraceID != client.TraceID {
		t.Errorf("server trace %q, want client trace %q", server.TraceID, client.TraceID)
	}
	if server.ParentID != client.ID {
		t.Errorf("server parent %q, want client span %q", server.ParentID, client.ID)
	}
	server.End()
	client.End()

	// No header → fresh root trace.
	fresh := tr.StartWith("server-op", ContextFromRequest(httptest.NewRequest(http.MethodGet, "/x", nil)))
	if fresh.ParentID != "" || fresh.TraceID == client.TraceID {
		t.Fatalf("invalid context should start a fresh root, got parent=%q trace=%q",
			fresh.ParentID, fresh.TraceID)
	}
	fresh.End()
}

func TestDeterministicIDs(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracerWithClock(fixedClock(time.Millisecond))
		root := tr.Start("round")
		a := root.Child("upload")
		a.End()
		b := root.Child("upload") // same name, next sibling
		b.End()
		remote := tr.StartWith("serve", root.Context())
		remote.End()
		root.End()
		return tr
	}
	t1, t2 := build(), build()
	s1, s2 := t1.Finished(), t2.Finished()
	if len(s1) != len(s2) {
		t.Fatalf("span counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].ID != s2[i].ID || s1[i].TraceID != s2[i].TraceID {
			t.Errorf("span %d IDs differ: (%s,%s) vs (%s,%s)",
				i, s1[i].TraceID, s1[i].ID, s2[i].TraceID, s2[i].ID)
		}
	}
	// Sibling spans sharing a name must still get distinct IDs.
	if s1[0].ID == s1[1].ID {
		t.Fatalf("sibling upload spans share ID %s", s1[0].ID)
	}
}

// TestConcurrentExportDeterminism is the regression test for JSONL
// ordering: two runs whose spans finish in scheduler-dependent order must
// still export byte-identical files.
func TestConcurrentExportDeterminism(t *testing.T) {
	run := func() []byte {
		start := time.Unix(1_700_000_000, 0).UTC()
		tr := NewTracerWithClock(func() time.Time { return start })
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				names := []string{"alpha", "beta", "gamma", "delta",
					"epsilon", "zeta", "eta", "theta"}
				root := tr.Start(names[g])
				for j := 0; j < 50; j++ {
					sp := root.Child("op")
					sp.SetAttr("j", j)
					sp.End()
				}
				root.End()
			}(g)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("concurrent runs exported different trace bytes")
	}
}

// TestTraceSchemaGolden pins the v1 JSONL format: any change to the
// record shape must update the golden file and bump TraceSchemaVersion.
func TestTraceSchemaGolden(t *testing.T) {
	tr := NewTracerWithClock(fixedClock(250 * time.Millisecond))
	root := tr.Start("fed-round")
	up := root.Child("upload")
	up.SetAttr("bytes", 4096)
	up.SetSimDuration("transfer", 1500*time.Millisecond)
	up.End()
	remote := tr.StartWith("serve-reload", root.Context())
	remote.EndErr(os.ErrNotExist)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_schema_v1.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace format drifted from %s:\ngot:\n%swant:\n%s", golden, buf.Bytes(), want)
	}

	// The reader must accept its own format and reject future schemas.
	recs, err := ReadTraceJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("ReadTraceJSONL on golden: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("golden spans = %d, want 3", len(recs))
	}
	if _, err := ReadTraceJSONL(bytes.NewReader(
		[]byte(`{"v":99,"trace":"t","id":"s","name":"x","start":"2023-11-14T22:13:20Z","dur_ms":1}`),
	)); err == nil {
		t.Fatal("future schema version accepted")
	}
}

func TestWriteTraceReport(t *testing.T) {
	tr := NewTracerWithClock(fixedClock(100 * time.Millisecond))
	root := tr.Start("fed-round")
	a := root.Child("upload")
	a.SetSimDuration("transfer", 2*time.Second)
	a.End()
	b := root.Child("aggregate")
	b.End()
	root.End()

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTraceJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	if err := WriteTraceReport(&rep, recs); err != nil {
		t.Fatalf("report error: %v\n%s", err, rep.String())
	}
	out := rep.String()
	for _, want := range []string{"fed-round", "upload", "aggregate",
		"critical path:", "orphans: 0"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// A span pointing at a parent outside the file is an error.
	recs[1].Parent = "s-nonexistent"
	var rep2 bytes.Buffer
	if err := WriteTraceReport(&rep2, recs); err == nil {
		t.Fatal("orphan span did not produce an error")
	}
}
