package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// TraceSpanRec is one parsed line of a JSONL trace file (schema v1) — the
// read-side mirror of the record WriteJSONL emits.
type TraceSpanRec struct {
	V      int            `json:"v"`
	Trace  string         `json:"trace"`
	ID     string         `json:"id"`
	Parent string         `json:"parent"`
	Name   string         `json:"name"`
	Start  time.Time      `json:"-"`
	DurMS  float64        `json:"dur_ms"`
	Attrs  map[string]any `json:"attrs"`

	RawStart string `json:"start"`
}

// End returns the span's end instant (start + duration).
func (rec *TraceSpanRec) End() time.Time {
	return rec.Start.Add(time.Duration(rec.DurMS * float64(time.Millisecond)))
}

// SimSeconds sums the span's sim_*_s attributes — its total explicitly
// recorded virtual-time cost.
func (rec *TraceSpanRec) SimSeconds() float64 {
	var s float64
	for k, v := range rec.Attrs {
		if strings.HasPrefix(k, "sim_") && strings.HasSuffix(k, "_s") {
			if f, ok := v.(float64); ok {
				s += f
			}
		}
	}
	return s
}

// ReadTraceJSONL parses a JSONL trace stream into span records, rejecting
// records from a schema version this package does not understand.
func ReadTraceJSONL(r io.Reader) ([]TraceSpanRec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var recs []TraceSpanRec
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec TraceSpanRec
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("trace line %d: %v", line, err)
		}
		if rec.V != TraceSchemaVersion {
			return nil, fmt.Errorf("trace line %d: schema v%d, this tool reads v%d",
				line, rec.V, TraceSchemaVersion)
		}
		t, err := time.Parse(time.RFC3339Nano, rec.RawStart)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: bad start %q: %v", line, rec.RawStart, err)
		}
		rec.Start = t
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// stageStat aggregates all spans sharing a name.
type stageStat struct {
	name   string
	count  int
	wallMS float64
	simS   float64
}

// WriteTraceReport renders a trace file as a CI-greppable text summary:
// a per-stage latency table, the span tree of the largest trace, its
// critical path, and an orphan count. It returns an error when any span
// references a parent absent from the file (a broken propagation link),
// so a CI step can fail on `obs report` alone.
func WriteTraceReport(w io.Writer, recs []TraceSpanRec) error {
	if len(recs) == 0 {
		fmt.Fprintln(w, "trace: empty (0 spans)")
		fmt.Fprintln(w, "orphans: 0")
		return nil
	}

	byID := make(map[string]*TraceSpanRec, len(recs))
	children := map[string][]*TraceSpanRec{}
	traceSize := map[string]int{}
	for i := range recs {
		byID[recs[i].ID] = &recs[i]
		traceSize[recs[i].Trace]++
	}
	var orphans []string
	var roots []*TraceSpanRec
	for i := range recs {
		rec := &recs[i]
		if rec.Parent == "" {
			roots = append(roots, rec)
			continue
		}
		if _, ok := byID[rec.Parent]; !ok {
			orphans = append(orphans, rec.ID)
			continue
		}
		children[rec.Parent] = append(children[rec.Parent], rec)
	}
	for _, c := range children {
		sortRecs(c)
	}
	sortRecs(roots)

	// Per-stage summary over every span in the file.
	stages := map[string]*stageStat{}
	for i := range recs {
		rec := &recs[i]
		st := stages[rec.Name]
		if st == nil {
			st = &stageStat{name: rec.Name}
			stages[rec.Name] = st
		}
		st.count++
		st.wallMS += rec.DurMS
		st.simS += rec.SimSeconds()
	}
	ordered := make([]*stageStat, 0, len(stages))
	for _, st := range stages {
		ordered = append(ordered, st)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].name < ordered[j].name })

	nTraces := len(traceSize)
	fmt.Fprintf(w, "trace: %d spans, %d trace(s), %d root(s)\n\n", len(recs), nTraces, len(roots))
	fmt.Fprintf(w, "%-24s %6s %12s %12s %12s\n", "stage", "count", "total_ms", "mean_ms", "sim_s")
	for _, st := range ordered {
		fmt.Fprintf(w, "%-24s %6d %12.3f %12.3f %12.3f\n",
			st.name, st.count, st.wallMS, st.wallMS/float64(st.count), st.simS)
	}

	// Tree + critical path of the largest trace (most spans; ties by ID).
	bestTrace := ""
	for id, n := range traceSize {
		if bestTrace == "" || n > traceSize[bestTrace] ||
			(n == traceSize[bestTrace] && id < bestTrace) {
			bestTrace = id
		}
	}
	var bestRoots []*TraceSpanRec
	for _, r := range roots {
		if r.Trace == bestTrace {
			bestRoots = append(bestRoots, r)
		}
	}
	fmt.Fprintf(w, "\nlargest trace %s (%d spans):\n", bestTrace, traceSize[bestTrace])
	for _, r := range bestRoots {
		writeTree(w, r, children, 0)
	}

	if len(bestRoots) > 0 {
		fmt.Fprintf(w, "\ncritical path:\n")
		rec := bestRoots[0]
		for rec != nil {
			fmt.Fprintf(w, "  %s (%.3f ms", rec.Name, rec.DurMS)
			if s := rec.SimSeconds(); s > 0 {
				fmt.Fprintf(w, ", sim %.3f s", s)
			}
			fmt.Fprintf(w, ")\n")
			// Descend into the child whose end time is latest — the one
			// the parent was waiting on when it finished.
			var next *TraceSpanRec
			for _, c := range children[rec.ID] {
				if next == nil || c.End().After(next.End()) ||
					(c.End().Equal(next.End()) && c.ID < next.ID) {
					next = c
				}
			}
			rec = next
		}
	}

	fmt.Fprintf(w, "\norphans: %d\n", len(orphans))
	if len(orphans) > 0 {
		sort.Strings(orphans)
		return fmt.Errorf("trace has %d orphan span(s) with missing parents: %s",
			len(orphans), strings.Join(orphans, ", "))
	}
	return nil
}

func sortRecs(recs []*TraceSpanRec) {
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Start.Equal(recs[j].Start) {
			return recs[i].Start.Before(recs[j].Start)
		}
		return recs[i].ID < recs[j].ID
	})
}

func writeTree(w io.Writer, rec *TraceSpanRec, children map[string][]*TraceSpanRec, depth int) {
	fmt.Fprintf(w, "  %s%s %.3f ms", strings.Repeat("· ", depth), rec.Name, rec.DurMS)
	if s := rec.SimSeconds(); s > 0 {
		fmt.Fprintf(w, " (sim %.3f s)", s)
	}
	if e, ok := rec.Attrs["error"]; ok {
		fmt.Fprintf(w, " [error: %v]", e)
	}
	fmt.Fprintln(w)
	for _, c := range children[rec.ID] {
		writeTree(w, c, children, depth+1)
	}
}
