package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	// 10 observations uniformly into the (1,2] bucket, 10 into (4,8].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
		h.Observe(6)
	}
	// rank(p50)=10 → exactly fills the (1,2] bucket → its upper bound.
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	// rank(p90)=18 → 8/10 into the (4,8] bucket → 4 + 0.8*4.
	if got := h.Quantile(0.9); math.Abs(got-7.2) > 1e-9 {
		t.Errorf("p90 = %v, want 7.2", got)
	}
	// Values past the last bound clamp to it.
	h2 := r.Histogram("lat2", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-bucket p99 = %v, want last bound 2", got)
	}
	// Empty and nil histograms are 0.
	if got := r.Histogram("lat3", []float64{1}).Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil p50 = %v, want 0", got)
	}
	// Snapshot surfaces the same estimates.
	q := r.Snapshot().HistQuantiles["lat"]
	if q.P50 != 2 || math.Abs(q.P90-7.2) > 1e-9 {
		t.Errorf("snapshot quantiles = %+v", q)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	h.ObserveExemplar(0.5, "tfast")
	h.ObserveExemplar(5, "tslow")
	h.ObserveExemplar(3, "tslow2") // same bucket: last write wins
	h.Observe(0.7)                 // untagged: leaves exemplar alone
	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("exemplar slots = %d, want 3", len(ex))
	}
	if ex[0].TraceID != "tfast" || ex[0].Value != 0.5 {
		t.Errorf("bucket 0 exemplar = %+v", ex[0])
	}
	if ex[1].TraceID != "tslow2" || ex[1].Value != 3 {
		t.Errorf("bucket 1 exemplar = %+v", ex[1])
	}
	if got := slowestExemplar(h); got != "tslow2" {
		t.Errorf("slowestExemplar = %q, want tslow2", got)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
}

func TestMetricsHandlerMethods(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	resp, err = http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
	}
}

func TestDebugHandler(t *testing.T) {
	o := Observer{Tracer: NewTracerWithClock(fixedClock(time.Millisecond)), Metrics: NewRegistry()}
	o.Metrics.Counter("fed_rounds_total").Add(3)
	o.Metrics.Gauge("edge_devices_live").Set(5)
	root := o.Tracer.Start("fed-round")
	h := o.Metrics.Histogram("fed_round_seconds", []float64{1, 10})
	h.ObserveExemplar(4, root.TraceID)
	root.Child("upload").End()
	root.End()

	srv := httptest.NewServer(DebugHandler(o))
	defer srv.Close()

	get := func(url string) (*http.Response, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		return resp, sb.String()
	}

	resp, body := get(srv.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/obs = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{"fed_rounds_total", "edge_devices_live",
		"fed_round_seconds", "fed-round", "upload", root.TraceID} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// JSON view is deterministic across requests.
	resp, body1 := get(srv.URL + "?format=json")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type = %q", ct)
	}
	_, body2 := get(srv.URL + "?format=json")
	if body1 != body2 {
		t.Error("json debug body not deterministic")
	}
	for _, want := range []string{`"schema": 1`, `"p90"`, `"exemplar": "` + root.TraceID + `"`} {
		if !strings.Contains(body1, want) {
			t.Errorf("json debug missing %q:\n%s", want, body1)
		}
	}

	// POST is rejected.
	pr, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/obs = %d, want 405", pr.StatusCode)
	}
}
