package obs

import "strings"

// MaxLabelCardinality is the budget the repo's cardinality lint enforces
// (scripts/verify.sh and the fleet-scale tests): every label key on every
// series must stay under this many distinct values. Unbounded data —
// device IDs, request IDs, raw durations — belongs in trace span attrs,
// not metric labels.
const MaxLabelCardinality = 32

// LabelCardinality counts, for every metric-name/label-key pair present in
// the snapshot, how many distinct label values exist — the in-process
// mirror of the verify.sh awk lint, so fleet-scale tests can assert a 10k
// device run still labels per-shard rather than per-device. Keys in the
// returned map are "metric_name/label_key".
func (s Snapshot) LabelCardinality() map[string]int {
	seen := map[string]map[string]bool{}
	collect := func(series string) {
		open := strings.IndexByte(series, '{')
		if open < 0 {
			return
		}
		name := series[:open]
		body := strings.TrimSuffix(series[open+1:], "}")
		for _, kv := range splitLabels(body) {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				continue
			}
			key := name + "/" + kv[:eq]
			val := strings.Trim(kv[eq+1:], `"`)
			if seen[key] == nil {
				seen[key] = map[string]bool{}
			}
			seen[key][val] = true
		}
	}
	for series := range s.Counters {
		collect(series)
	}
	for series := range s.Gauges {
		collect(series)
	}
	for series := range s.HistCounts {
		collect(series)
	}
	out := make(map[string]int, len(seen))
	for k, vals := range seen {
		out[k] = len(vals)
	}
	return out
}

// splitLabels splits a canonical label body (`k="v",k2="v2"`) on the
// commas between pairs; label values are quoted, so a comma inside a value
// never terminates a pair.
func splitLabels(body string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}
