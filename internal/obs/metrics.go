package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry holds named metrics. Metrics are get-or-create: asking for the
// same name and label set twice returns the same instrument, so layers can
// be instrumented independently and still share series. A nil *Registry
// returns nil instruments, which are themselves no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // metric name -> HELP text
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Label is one key=value dimension on a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey canonicalizes name+labels: labels sorted by key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu  sync.Mutex
	v   float64
	key string
}

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can go up and down.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	key string
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style: counts[i] is the number of observations <= Bounds[i], with an
// implicit +Inf bucket holding everything else.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
	key    string
}

// DefSecondsBuckets spans microseconds to hours, suiting both real epoch
// timings and simulated transfer/training durations.
var DefSecondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300, 1800, 7200,
}

// DefBytesBuckets spans a camera frame to a packed dataset.
var DefBytesBuckets = []float64{
	1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += v
	h.count++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Counter returns (creating if needed) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{key: key}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{key: key}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for name+labels
// with the given bucket upper bounds (sorted ascending; an implicit +Inf
// bucket is appended). Buckets are fixed at first creation; later calls
// with different bounds reuse the existing series.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{key: key, bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.histograms[key] = h
	}
	return h
}

// Help attaches HELP text to a metric name (not a series), shown in the
// text exposition.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// baseName strips a series key back to its metric name.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// labelPart returns the "{...}" suffix of a series key ("" when bare).
func labelPart(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[i:]
	}
	return ""
}

// mergeLabels splices extra into an existing label part: `{a="b"}` +
// `le="5"` -> `{a="b",le="5"}`.
func mergeLabels(part, extra string) string {
	if part == "" {
		return "{" + extra + "}"
	}
	return part[:len(part)-1] + "," + extra + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteProm writes the registry in the Prometheus text exposition format,
// deterministically ordered (metric name, then series key).
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type series struct {
		key  string
		kind string // counter | gauge | histogram
	}
	var all []series
	for k := range r.counters {
		all = append(all, series{k, "counter"})
	}
	for k := range r.gauges {
		all = append(all, series{k, "gauge"})
	}
	for k := range r.histograms {
		all = append(all, series{k, "histogram"})
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		ni, nj := baseName(all[i].key), baseName(all[j].key)
		if ni != nj {
			return ni < nj
		}
		return all[i].key < all[j].key
	})
	lastName := ""
	for _, s := range all {
		name := baseName(s.key)
		if name != lastName {
			if h, ok := help[name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, s.kind); err != nil {
				return err
			}
			lastName = name
		}
		switch s.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %s\n", s.key, formatValue(counters[s.key].Value())); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %s\n", s.key, formatValue(gauges[s.key].Value())); err != nil {
				return err
			}
		case "histogram":
			h := histograms[s.key]
			part := labelPart(s.key)
			h.mu.Lock()
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i]
				le := mergeLabels(part, fmt.Sprintf("le=%q", formatValue(b)))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
					h.mu.Unlock()
					return err
				}
			}
			cum += h.counts[len(h.bounds)]
			le := mergeLabels(part, `le="+Inf"`)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
				h.mu.Unlock()
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				name, part, formatValue(h.sum), name, part, h.count); err != nil {
				h.mu.Unlock()
				return err
			}
			h.mu.Unlock()
		}
	}
	return nil
}

// Snapshot is a point-in-time copy of every series, for tests.
type Snapshot struct {
	Counters   map[string]float64
	Gauges     map[string]float64
	HistCounts map[string]uint64
	HistSums   map[string]float64
}

// Snapshot copies the registry's current values keyed by canonical series
// key (name plus sorted labels).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		HistCounts: map[string]uint64{},
		HistSums:   map[string]float64{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range histograms {
		snap.HistCounts[k] = h.Count()
		snap.HistSums[k] = h.Sum()
	}
	return snap
}

// Handler serves the registry as a Prometheus-format /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
