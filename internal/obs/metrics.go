package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// numShards is the lock-stripe width of the registry. 16 keeps the
// per-shard maps small while making it unlikely that two hot series
// contend on the same lock; series→shard assignment is a stable hash of
// the canonical series key, so exposition order never depends on it.
const numShards = 16

// registryShard is one stripe of the registry: its own lock and its own
// slice of the series namespace. Lookups take the read lock (the steady
// state once a series exists); only first-creation takes the write lock.
type registryShard struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Registry holds named metrics. Metrics are get-or-create: asking for the
// same name and label set twice returns the same instrument, so layers can
// be instrumented independently and still share series. A nil *Registry
// returns nil instruments, which are themselves no-ops.
//
// Internally the registry is lock-striped across numShards shards and the
// instruments themselves update via atomics, so a fleet of goroutines
// hammering hot counters contends on nothing but the cache line of the
// counter itself. Exposition (WriteProm, Snapshot) gathers across shards
// and is byte-identical to the old single-mutex layout.
type Registry struct {
	shards [numShards]registryShard

	helpMu sync.Mutex
	help   map[string]string // metric name -> HELP text
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	r := &Registry{help: map[string]string{}}
	for i := range r.shards {
		r.shards[i].counters = map[string]*Counter{}
		r.shards[i].gauges = map[string]*Gauge{}
		r.shards[i].histograms = map[string]*Histogram{}
	}
	return r
}

// shardOf hashes a series key onto a stripe (FNV-1a).
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % numShards
}

// Label is one key=value dimension on a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey canonicalizes name+labels: labels sorted by key. This sits on
// the hot path of every labeled-instrument lookup, so it avoids
// sort.Slice (closure allocation) and fmt (interface boxing): label sets
// are tiny, so an insertion sort over a stack copy plus
// strconv.AppendQuote — which produces exactly fmt's %q bytes — builds
// the same key with a single allocation for the final string.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var arr [8]Label
	var ls []Label
	if len(labels) <= len(arr) {
		ls = arr[:len(labels)]
		copy(ls, labels)
	} else {
		ls = append([]Label(nil), labels...)
	}
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].Key < ls[j-1].Key; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
	n := len(name) + 2
	for _, l := range ls {
		n += len(l.Key) + len(l.Value) + 4
	}
	buf := make([]byte, 0, n)
	buf = append(buf, name...)
	buf = append(buf, '{')
	for i, l := range ls {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, l.Key...)
		buf = append(buf, '=')
		buf = strconv.AppendQuote(buf, l.Value)
	}
	buf = append(buf, '}')
	return string(buf)
}

// addFloatBits atomically adds delta to a float64 stored as uint64 bits.
func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Counter is a monotonically increasing value. Updates are lock-free
// (CAS on the float bits).
type Counter struct {
	bits atomic.Uint64
	key  string
}

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	addFloatBits(&c.bits, delta)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down. Updates are lock-free.
type Gauge struct {
	bits atomic.Uint64
	key  string
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloatBits(&g.bits, delta)
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Exemplar ties a histogram bucket back to the trace that landed in it,
// so a slow bucket points at a concrete run to inspect.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style: counts[i] is the number of observations <= Bounds[i], with an
// implicit +Inf bucket holding everything else. Observations are
// lock-free: per-bucket atomic counts, CAS-summed total.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits   atomic.Uint64
	count     atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // parallel to counts; last trace per bucket
	key       string
}

// DefSecondsBuckets spans microseconds to hours, suiting both real epoch
// timings and simulated transfer/training durations.
var DefSecondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300, 1800, 7200,
}

// DefBytesBuckets spans a camera frame to a packed dataset.
var DefBytesBuckets = []float64{
	1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30,
}

// bucketIdx returns the index of the bucket v falls into.
func (h *Histogram) bucketIdx(v float64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one value and, when traceID is non-empty, tags
// the bucket it landed in with that trace — the exemplar a dashboard
// surfaces next to a suspicious bucket.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := h.bucketIdx(v)
	h.counts[idx].Add(1)
	addFloatBits(&h.sumBits, v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[idx].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurationExemplar records a duration in seconds with a trace
// exemplar.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID string) {
	h.ObserveExemplar(d.Seconds(), traceID)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0 < q < 1) from the bucket
// counts by linear interpolation within the containing bucket — the same
// estimate Prometheus's histogram_quantile computes, so it is exactly as
// deterministic as the bucket counts. Values in the first bucket
// interpolate from 0; ranks landing in the +Inf bucket return the
// largest finite bound. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, b := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (b-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// Exemplars returns a copy of the per-bucket exemplars (zero-value
// entries where no traced observation has landed). Index i corresponds
// to the bucket with bound Bounds[i]; the final entry is +Inf.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	out := make([]Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out[i] = *e
		}
	}
	return out
}

// Counter returns (creating if needed) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	sh := &r.shards[shardOf(key)]
	sh.mu.RLock()
	c := sh.counters[key]
	sh.mu.RUnlock()
	if c != nil {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c = sh.counters[key]; c == nil {
		c = &Counter{key: key}
		sh.counters[key] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	sh := &r.shards[shardOf(key)]
	sh.mu.RLock()
	g := sh.gauges[key]
	sh.mu.RUnlock()
	if g != nil {
		return g
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if g = sh.gauges[key]; g == nil {
		g = &Gauge{key: key}
		sh.gauges[key] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for name+labels
// with the given bucket upper bounds (sorted ascending; an implicit +Inf
// bucket is appended). Buckets are fixed at first creation; later calls
// with different bounds reuse the existing series.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	sh := &r.shards[shardOf(key)]
	sh.mu.RLock()
	h := sh.histograms[key]
	sh.mu.RUnlock()
	if h != nil {
		return h
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if h = sh.histograms[key]; h == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{
			key:       key,
			bounds:    bs,
			counts:    make([]atomic.Uint64, len(bs)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
		}
		sh.histograms[key] = h
	}
	return h
}

// Help attaches HELP text to a metric name (not a series), shown in the
// text exposition.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.helpMu.Lock()
	r.help[name] = text
	r.helpMu.Unlock()
}

// gather snapshots the instrument maps across every shard.
func (r *Registry) gather() (counters map[string]*Counter, gauges map[string]*Gauge, histograms map[string]*Histogram) {
	counters = map[string]*Counter{}
	gauges = map[string]*Gauge{}
	histograms = map[string]*Histogram{}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for k, v := range sh.counters {
			counters[k] = v
		}
		for k, v := range sh.gauges {
			gauges[k] = v
		}
		for k, v := range sh.histograms {
			histograms[k] = v
		}
		sh.mu.RUnlock()
	}
	return counters, gauges, histograms
}

// baseName strips a series key back to its metric name.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// labelPart returns the "{...}" suffix of a series key ("" when bare).
func labelPart(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[i:]
	}
	return ""
}

// mergeLabels splices extra into an existing label part: `{a="b"}` +
// `le="5"` -> `{a="b",le="5"}`.
func mergeLabels(part, extra string) string {
	if part == "" {
		return "{" + extra + "}"
	}
	return part[:len(part)-1] + "," + extra + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteProm writes the registry in the Prometheus text exposition format,
// deterministically ordered (metric name, then series key). The output
// bytes are independent of the shard layout: series are gathered across
// shards and sorted exactly as the single-mutex registry sorted them.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, histograms := r.gather()
	r.helpMu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.helpMu.Unlock()

	type series struct {
		key  string
		kind string // counter | gauge | histogram
	}
	var all []series
	for k := range counters {
		all = append(all, series{k, "counter"})
	}
	for k := range gauges {
		all = append(all, series{k, "gauge"})
	}
	for k := range histograms {
		all = append(all, series{k, "histogram"})
	}
	sort.Slice(all, func(i, j int) bool {
		ni, nj := baseName(all[i].key), baseName(all[j].key)
		if ni != nj {
			return ni < nj
		}
		return all[i].key < all[j].key
	})
	lastName := ""
	for _, s := range all {
		name := baseName(s.key)
		if name != lastName {
			if h, ok := help[name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, s.kind); err != nil {
				return err
			}
			lastName = name
		}
		switch s.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %s\n", s.key, formatValue(counters[s.key].Value())); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %s\n", s.key, formatValue(gauges[s.key].Value())); err != nil {
				return err
			}
		case "histogram":
			h := histograms[s.key]
			part := labelPart(s.key)
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				le := mergeLabels(part, fmt.Sprintf("le=%q", formatValue(b)))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			le := mergeLabels(part, `le="+Inf"`)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				name, part, formatValue(h.Sum()), name, part, cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// QuantileSet is the standard latency summary derived from a histogram's
// buckets.
type QuantileSet struct {
	P50, P90, P99 float64
}

// Snapshot is a point-in-time copy of every series, for tests.
type Snapshot struct {
	Counters      map[string]float64
	Gauges        map[string]float64
	HistCounts    map[string]uint64
	HistSums      map[string]float64
	HistQuantiles map[string]QuantileSet
}

// Snapshot copies the registry's current values keyed by canonical series
// key (name plus sorted labels). Histograms additionally carry
// bucket-interpolated p50/p90/p99 estimates in HistQuantiles.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:      map[string]float64{},
		Gauges:        map[string]float64{},
		HistCounts:    map[string]uint64{},
		HistSums:      map[string]float64{},
		HistQuantiles: map[string]QuantileSet{},
	}
	if r == nil {
		return snap
	}
	counters, gauges, histograms := r.gather()
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range histograms {
		snap.HistCounts[k] = h.Count()
		snap.HistSums[k] = h.Sum()
		snap.HistQuantiles[k] = QuantileSet{
			P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
		}
	}
	return snap
}

// Handler serves the registry as a Prometheus-format /metrics endpoint
// (GET only; other methods get 405).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
