package cv

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/track"
)

func colorFrame(t *testing.T, r, g, b uint8, fraction float64) *sim.Frame {
	t.Helper()
	f, err := sim.NewFrame(20, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := int(fraction * 400)
	for i := 0; i < 400; i++ {
		if i < n {
			f.Pix[i*3], f.Pix[i*3+1], f.Pix[i*3+2] = r, g, b
		} else {
			f.Pix[i*3], f.Pix[i*3+1], f.Pix[i*3+2] = 90, 90, 95 // floor
		}
	}
	return f
}

func TestClassifyRedMeansStop(t *testing.T) {
	f := colorFrame(t, 220, 30, 30, 0.3)
	sig, err := ClassifySignal(f, DefaultColorClassifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sig != SignalStop {
		t.Errorf("got %s", sig)
	}
}

func TestClassifyGreenMeansGo(t *testing.T) {
	f := colorFrame(t, 30, 220, 30, 0.3)
	sig, err := ClassifySignal(f, DefaultColorClassifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sig != SignalGo {
		t.Errorf("got %s", sig)
	}
}

func TestClassifyNeutralIsUnknown(t *testing.T) {
	f := colorFrame(t, 90, 90, 95, 1.0)
	sig, err := ClassifySignal(f, DefaultColorClassifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sig != SignalUnknown {
		t.Errorf("got %s", sig)
	}
}

func TestClassifyValidation(t *testing.T) {
	if _, err := ClassifySignal(nil, DefaultColorClassifierConfig()); err == nil {
		t.Error("nil frame accepted")
	}
	gray, _ := sim.NewFrame(4, 4, 1)
	if _, err := ClassifySignal(gray, DefaultColorClassifierConfig()); err == nil {
		t.Error("grayscale accepted")
	}
	f := colorFrame(t, 200, 0, 0, 0.5)
	bad := DefaultColorClassifierConfig()
	bad.Margin = 0
	if _, err := ClassifySignal(f, bad); err == nil {
		t.Error("zero margin accepted")
	}
}

type constDriver struct{ s, t float64 }

func (c constDriver) DriveFrame(*sim.Frame, sim.CarState) (float64, float64) { return c.s, c.t }
func (c constDriver) Drive(sim.CarState) (float64, float64)                  { return c.s, c.t }

func TestSignalGateBrakesOnRed(t *testing.T) {
	gate, err := NewSignalGate(constDriver{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	red := colorFrame(t, 220, 30, 30, 0.3)
	s, th := gate.DriveFrame(red, sim.CarState{})
	if s != 0 || th != -1 {
		t.Errorf("red light: (%g,%g), want (0,-1)", s, th)
	}
	if gate.LastSignal != SignalStop {
		t.Errorf("signal %s", gate.LastSignal)
	}
	green := colorFrame(t, 30, 220, 30, 0.3)
	s, th = gate.DriveFrame(green, sim.CarState{})
	if s != 0.2 || th != 0.6 {
		t.Errorf("green light: (%g,%g)", s, th)
	}
	if _, err := NewSignalGate(nil); err == nil {
		t.Error("nil inner accepted")
	}
}

func TestLineFollowerSteersTowardLine(t *testing.T) {
	lf := NewLineFollower()
	// Bright line on the right half of a gray frame.
	f, _ := sim.NewFrame(40, 30, 1)
	for i := range f.Pix {
		f.Pix[i] = 60
	}
	for y := 20; y < 29; y++ {
		for x := 30; x < 34; x++ {
			f.Set(x, y, 255)
		}
	}
	s, th := lf.DriveFrame(f, sim.CarState{})
	if s <= 0 {
		t.Errorf("line on the right should steer right-positive offset, got %g", s)
	}
	if th != lf.Throttle {
		t.Errorf("throttle %g", th)
	}
}

func TestLineFollowerLostLineCreeps(t *testing.T) {
	lf := NewLineFollower()
	f, _ := sim.NewFrame(40, 30, 1) // all black
	s, th := lf.DriveFrame(f, sim.CarState{})
	if s != 0 || th <= 0 || th >= lf.Throttle {
		t.Errorf("lost line: (%g, %g)", s, th)
	}
	if s, th := lf.DriveFrame(nil, sim.CarState{}); s != 0 || th != 0 {
		t.Error("nil frame should stop")
	}
}

// TestLineFollowerDrivesOval is the non-ML baseline end-to-end: pure pixel
// processing must make progress around the real rendered track.
func TestLineFollowerDrivesOval(t *testing.T) {
	trk, err := track.DefaultOval()
	if err != nil {
		t.Fatal(err)
	}
	camCfg := sim.SmallCameraConfig()
	cam, err := sim.NewCamera(camCfg, trk)
	if err != nil {
		t.Fatal(err)
	}
	car, err := sim.NewCar(sim.DefaultCarConfig())
	if err != nil {
		t.Fatal(err)
	}
	ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: 1200, OffTrackMargin: 0.3, ResetOnCrash: true},
		car, cam, NewLineFollower())
	if err != nil {
		t.Fatal(err)
	}
	res := ses.Run(time.Unix(1_700_000_000, 0))
	if res.MeanSpeed < 0.2 {
		t.Errorf("line follower barely moved: %g m/s", res.MeanSpeed)
	}
}

func TestPathFollowerTracksRecordedPath(t *testing.T) {
	trk, err := track.DefaultOval()
	if err != nil {
		t.Fatal(err)
	}
	// Record a "GPS" path along the centerline.
	var path []GPSPoint
	L := trk.Centerline.Length()
	for s := 0.0; s < L; s += 0.2 {
		pt := trk.Centerline.PointAt(s)
		path = append(path, GPSPoint{pt.X, pt.Y})
	}
	carCfg := sim.DefaultCarConfig()
	pf, err := NewPathFollower(path, carCfg.Wheelbase, carCfg.MaxSteer)
	if err != nil {
		t.Fatal(err)
	}
	car, _ := sim.NewCar(carCfg)
	x, y, h := trk.StartPose(0)
	car.Reset(x, y, h)
	maxDev := 0.0
	for i := 0; i < 1500 && !pf.Done(car.State); i++ {
		s, th := pf.Drive(car.State)
		car.Step(s, th, 0.05)
		proj := trk.Centerline.Project(track.Point{X: car.State.X, Y: car.State.Y})
		if d := math.Abs(proj.Lateral); d > maxDev {
			maxDev = d
		}
	}
	if !pf.Done(car.State) {
		t.Error("path never completed")
	}
	if maxDev > trk.Width/2 {
		t.Errorf("path follower deviated %g m", maxDev)
	}
}

func TestPathFollowerValidation(t *testing.T) {
	if _, err := NewPathFollower([]GPSPoint{{0, 0}}, 0.25, 0.4); err == nil {
		t.Error("single waypoint accepted")
	}
	if _, err := NewPathFollower([]GPSPoint{{0, 0}, {1, 0}}, 0, 0.4); err == nil {
		t.Error("zero wheelbase accepted")
	}
}

// TestSignalGateStopsCarAtRenderedRedLight is the integrated stop/go
// exercise: a red prop on the track must bring a gated expert to a halt,
// while a green prop must not.
func TestSignalGateStopsCarAtRenderedRedLight(t *testing.T) {
	run := func(col [3]uint8) float64 {
		trk, err := track.DefaultOval()
		if err != nil {
			t.Fatal(err)
		}
		camCfg := sim.SmallCameraConfig()
		camCfg.Channels = 3
		cam, err := sim.NewCamera(camCfg, trk)
		if err != nil {
			t.Fatal(err)
		}
		car, err := sim.NewCar(sim.DefaultCarConfig())
		if err != nil {
			t.Fatal(err)
		}
		x, y, h := trk.StartPose(0)
		car.Reset(x, y, h)
		// Prop 1.2 m ahead on the centerline.
		pt := trk.Centerline.PointAt(1.2)
		if err := cam.AddObstacle(sim.Obstacle{X: pt.X, Y: pt.Y, Radius: 0.12, Color: col}); err != nil {
			t.Fatal(err)
		}
		expert := sim.NewPurePursuit(trk, car.Cfg)
		// Wrap the expert (a plain Driver) as a FrameDriver for the gate.
		wrapped := frameAdapter{expert}
		gate, err := NewSignalGate(wrapped)
		if err != nil {
			t.Fatal(err)
		}
		sawStop := false
		minAfterStop := 99.0
		for i := 0; i < 120; i++ {
			frame := cam.Render(car.State)
			s, th := gate.DriveFrame(frame, car.State)
			car.Step(s, th, 0.05)
			if gate.LastSignal == SignalStop {
				sawStop = true
			}
			if sawStop && car.State.Speed < minAfterStop {
				minAfterStop = car.State.Speed
			}
		}
		if !sawStop {
			return -1 // signal never seen
		}
		return minAfterStop
	}
	redMin := run(sim.ObstacleRed)
	greenMin := run(sim.ObstacleGreen)
	if redMin < 0 {
		t.Fatal("red light never detected")
	}
	if redMin > 0.15 {
		t.Errorf("car only slowed to %g m/s at the red light", redMin)
	}
	if greenMin >= 0 {
		t.Errorf("green prop misclassified as stop (braked to %g)", greenMin)
	}
}

// frameAdapter exposes a state-based driver through the FrameDriver
// interface so it can be wrapped by the signal gate.
type frameAdapter struct{ inner sim.Driver }

func (f frameAdapter) DriveFrame(_ *sim.Frame, st sim.CarState) (float64, float64) {
	return f.inner.Drive(st)
}
func (f frameAdapter) Drive(st sim.CarState) (float64, float64) { return f.inner.Drive(st) }
