// Package cv implements the classical computer-vision extensions the
// paper's "Training Additional Models" section proposes as student
// exercises: a color classifier ("camera identifies color of object placed
// in front of it; red means stop, green means go"), an edge-detection line
// follower ("camera used to identify the edge of the track or a center
// line and keep the car following that"), and GPS path following ("record
// a path with GPS and have the car follow that path").
package cv

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Signal is the color classifier's verdict.
type Signal string

// Classifier outcomes.
const (
	SignalStop    Signal = "stop"    // dominant red
	SignalGo      Signal = "go"      // dominant green
	SignalUnknown Signal = "unknown" // neither dominates
)

// ColorClassifierConfig tunes the stop/go detector.
type ColorClassifierConfig struct {
	// MinFraction is the fraction of pixels that must be decisively red or
	// green for a verdict.
	MinFraction float64
	// Margin is how much a channel must exceed the others to count as that
	// color (0-255 scale).
	Margin int
}

// DefaultColorClassifierConfig matches a toy traffic-light object held in
// front of the wide-angle camera; the low fraction threshold gives the car
// enough detection range to brake in time.
func DefaultColorClassifierConfig() ColorClassifierConfig {
	return ColorClassifierConfig{MinFraction: 0.02, Margin: 40}
}

// ClassifySignal inspects an RGB frame for a dominant red or green object.
// Grayscale frames cannot carry color and return an error.
func ClassifySignal(f *sim.Frame, cfg ColorClassifierConfig) (Signal, error) {
	if f == nil {
		return SignalUnknown, fmt.Errorf("cv: nil frame")
	}
	if f.C != 3 {
		return SignalUnknown, fmt.Errorf("cv: color classification needs RGB, got %d channels", f.C)
	}
	if cfg.MinFraction <= 0 || cfg.MinFraction > 1 || cfg.Margin <= 0 {
		return SignalUnknown, fmt.Errorf("cv: invalid classifier config %+v", cfg)
	}
	var red, green int
	n := f.W * f.H
	for i := 0; i < n; i++ {
		r := int(f.Pix[i*3])
		g := int(f.Pix[i*3+1])
		b := int(f.Pix[i*3+2])
		// Saturated-color tests: the 2x ratio excludes the orange tape
		// (strong red but substantial green) so only true signal props count.
		if r > 2*g && r > b+cfg.Margin {
			red++
		} else if g > 2*r && g > b+cfg.Margin {
			green++
		}
	}
	min := int(cfg.MinFraction * float64(n))
	switch {
	case red >= min && red >= 2*green:
		return SignalStop, nil
	case green >= min && green >= 2*red:
		return SignalGo, nil
	default:
		return SignalUnknown, nil
	}
}

// SignalGate wraps a driver and brakes while the camera shows a stop
// signal — the red-means-stop/green-means-go exercise as a vehicle part.
type SignalGate struct {
	Inner sim.FrameDriver
	Cfg   ColorClassifierConfig

	LastSignal Signal
}

// NewSignalGate builds the gate.
func NewSignalGate(inner sim.FrameDriver) (*SignalGate, error) {
	if inner == nil {
		return nil, fmt.Errorf("cv: nil inner driver")
	}
	return &SignalGate{Inner: inner, Cfg: DefaultColorClassifierConfig(), LastSignal: SignalUnknown}, nil
}

// DriveFrame implements sim.FrameDriver.
func (g *SignalGate) DriveFrame(f *sim.Frame, st sim.CarState) (float64, float64) {
	s, t := g.Inner.DriveFrame(f, st)
	if f.C == 3 {
		if sig, err := ClassifySignal(f, g.Cfg); err == nil {
			g.LastSignal = sig
			if sig == SignalStop {
				return 0, -1 // brake hard
			}
		}
	}
	return s, t
}

// Drive implements sim.Driver.
func (g *SignalGate) Drive(st sim.CarState) (float64, float64) { return g.Inner.Drive(st) }

// LineFollower steers from raw pixels with no learning at all: it finds
// the horizontal centroid of tape-colored pixels in a lower band of the
// image and applies a P-controller — the edge-detection/line-following
// exercise, and a useful non-ML baseline for the six trained pilots.
type LineFollower struct {
	// BandTop/BandBottom bound the image rows scanned, as fractions of H.
	BandTop, BandBottom float64
	// Gain converts normalized centroid offset to steering.
	Gain float64
	// Throttle is the constant drive power.
	Throttle float64
	// Threshold is the minimum brightness (gray) or red-channel value for
	// a pixel to count as tape.
	Threshold uint8
}

// NewLineFollower returns a tuned follower for the synthetic tape tracks.
func NewLineFollower() *LineFollower {
	return &LineFollower{BandTop: 0.55, BandBottom: 0.95, Gain: 2.2, Throttle: 0.45, Threshold: 110}
}

// isTape decides whether a pixel looks like the orange tape.
func (l *LineFollower) isTape(px []uint8, channels int) bool {
	if channels == 3 {
		// Orange: strong red, moderate green, weak blue.
		return px[0] > l.Threshold && int(px[0]) > int(px[2])+40
	}
	return px[0] > l.Threshold
}

// DriveFrame implements sim.FrameDriver.
func (l *LineFollower) DriveFrame(f *sim.Frame, _ sim.CarState) (float64, float64) {
	if f == nil || f.W == 0 || f.H == 0 {
		return 0, 0
	}
	top := int(l.BandTop * float64(f.H))
	bottom := int(l.BandBottom * float64(f.H))
	if bottom > f.H {
		bottom = f.H
	}
	var sum, count float64
	for y := top; y < bottom; y++ {
		for x := 0; x < f.W; x++ {
			if l.isTape(f.At(x, y), f.C) {
				sum += float64(x)
				count++
			}
		}
	}
	if count == 0 {
		// Lost the line: creep forward straight.
		return 0, l.Throttle * 0.5
	}
	centroid := sum / count
	// Offset of the tape centroid from image center, normalized to [-1,1].
	offset := (centroid - float64(f.W)/2) / (float64(f.W) / 2)
	steering := l.Gain * offset
	if steering > 1 {
		steering = 1
	} else if steering < -1 {
		steering = -1
	}
	return steering, l.Throttle
}

// Drive implements sim.Driver (no frame: stop).
func (l *LineFollower) Drive(sim.CarState) (float64, float64) { return 0, 0 }

// GPSPoint is one recorded waypoint.
type GPSPoint struct {
	X, Y float64
}

// PathFollower replays a recorded GPS path with pure-pursuit steering —
// the "record a path with GPS and have the car follow that path"
// exercise. GPS noise is modeled by the recorder, not the follower.
type PathFollower struct {
	Path      []GPSPoint
	Lookahead float64
	Wheelbase float64
	MaxSteer  float64
	Throttle  float64

	cursor int
}

// NewPathFollower validates and builds a follower over a recorded path.
func NewPathFollower(path []GPSPoint, wheelbase, maxSteer float64) (*PathFollower, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("cv: path needs at least 2 waypoints")
	}
	if wheelbase <= 0 || maxSteer <= 0 {
		return nil, fmt.Errorf("cv: wheelbase and maxSteer must be positive")
	}
	return &PathFollower{Path: path, Lookahead: 0.5, Wheelbase: wheelbase, MaxSteer: maxSteer, Throttle: 0.4}, nil
}

// Drive implements sim.Driver using only position (the "GPS fix").
func (p *PathFollower) Drive(st sim.CarState) (float64, float64) {
	// Advance the cursor past waypoints we have reached.
	for p.cursor < len(p.Path)-1 {
		wp := p.Path[p.cursor]
		if math.Hypot(wp.X-st.X, wp.Y-st.Y) > p.Lookahead {
			break
		}
		p.cursor++
	}
	target := p.Path[p.cursor]
	dx, dy := target.X-st.X, target.Y-st.Y
	ch, sh := math.Cos(st.Heading), math.Sin(st.Heading)
	lx := dx*ch + dy*sh
	ly := -dx*sh + dy*ch
	dist := math.Hypot(lx, ly)
	if dist < 1e-6 {
		return 0, p.Throttle
	}
	k := 2 * ly / (dist * dist)
	delta := math.Atan(k * p.Wheelbase)
	steering := delta / p.MaxSteer
	if steering > 1 {
		steering = 1
	} else if steering < -1 {
		steering = -1
	}
	return steering, p.Throttle
}

// Done reports whether the car has consumed the whole path.
func (p *PathFollower) Done(st sim.CarState) bool {
	last := p.Path[len(p.Path)-1]
	return p.cursor >= len(p.Path)-1 && math.Hypot(last.X-st.X, last.Y-st.Y) <= p.Lookahead
}
