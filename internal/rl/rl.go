// Package rl implements the reinforcement-learning extension the paper
// proposes as an advanced assignment ("or experiment with reinforcement
// learning providing the opportunity for more advanced assignments"): a
// tabular Q-learning lane keeper. The agent observes a discretized
// (lateral offset, heading error, upcoming curvature) state, picks a
// steering action at fixed throttle, and is rewarded for forward progress
// and penalized for straying or crashing. It trains directly against the
// simulator's vehicle dynamics — no camera, matching how students first
// meet RL before adding perception.
package rl

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/track"
)

// Config sets the discretization and learning hyperparameters.
type Config struct {
	// Discretization.
	LateralBins int       // bins over [-Width/2-margin, +Width/2+margin]
	HeadingBins int       // bins over [-pi/2, pi/2] heading error
	CurvBins    int       // bins over upcoming curvature sign/magnitude (3 or 5)
	Actions     []float64 // steering choices

	// Learning.
	Alpha        float64 // learning rate
	Gamma        float64 // discount
	EpsilonStart float64 // initial exploration
	EpsilonEnd   float64
	Episodes     int
	StepsPerEp   int
	Throttle     float64 // fixed drive power
	Hz           float64
	Seed         int64

	// Reward shaping.
	ProgressGain   float64 // reward per meter of forward progress
	LateralPenalty float64 // penalty per meter of |lateral| per step
	CrashPenalty   float64
}

// DefaultConfig returns a configuration that learns the oval in a few
// hundred episodes.
func DefaultConfig() Config {
	return Config{
		LateralBins:    7,
		HeadingBins:    7,
		CurvBins:       3,
		Actions:        []float64{-0.8, -0.4, 0, 0.4, 0.8},
		Alpha:          0.2,
		Gamma:          0.95,
		EpsilonStart:   0.4,
		EpsilonEnd:     0.02,
		Episodes:       300,
		StepsPerEp:     250,
		Throttle:       0.35,
		Hz:             20,
		Seed:           1,
		ProgressGain:   10,
		LateralPenalty: 2,
		CrashPenalty:   50,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LateralBins < 3 || c.HeadingBins < 3 || c.CurvBins < 1 {
		return fmt.Errorf("rl: need >= 3 lateral/heading bins and >= 1 curvature bin")
	}
	if len(c.Actions) < 2 {
		return fmt.Errorf("rl: need >= 2 actions")
	}
	if c.Alpha <= 0 || c.Alpha > 1 || c.Gamma <= 0 || c.Gamma >= 1 {
		return fmt.Errorf("rl: alpha in (0,1], gamma in (0,1)")
	}
	if c.Episodes <= 0 || c.StepsPerEp <= 0 {
		return fmt.Errorf("rl: positive episodes and steps required")
	}
	if c.Throttle <= 0 || c.Throttle > 1 {
		return fmt.Errorf("rl: throttle in (0,1]")
	}
	if c.Hz <= 0 {
		return fmt.Errorf("rl: positive Hz required")
	}
	return nil
}

// Agent is a trained (or training) Q-learning lane keeper.
type Agent struct {
	Cfg Config
	Q   []float64 // [state][action] flattened

	trk *track.Track
	car sim.CarConfig
}

// NewAgent builds an untrained agent for a track and car.
func NewAgent(cfg Config, trk *track.Track, car sim.CarConfig) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trk == nil {
		return nil, fmt.Errorf("rl: nil track")
	}
	if err := car.Validate(); err != nil {
		return nil, err
	}
	states := cfg.LateralBins * cfg.HeadingBins * cfg.CurvBins
	return &Agent{
		Cfg: cfg,
		Q:   make([]float64, states*len(cfg.Actions)),
		trk: trk,
		car: car,
	}, nil
}

// stateOf discretizes the car's situation.
func (a *Agent) stateOf(st sim.CarState) int {
	cl := a.trk.Centerline
	proj := cl.Project(track.Point{X: st.X, Y: st.Y})
	halfW := a.trk.Width/2 + 0.1

	// Lateral bin.
	lb := binOf(proj.Lateral, -halfW, halfW, a.Cfg.LateralBins)

	// Heading error bin: difference between car heading and track tangent.
	herr := st.Heading - cl.HeadingAt(proj.S)
	for herr > math.Pi {
		herr -= 2 * math.Pi
	}
	for herr < -math.Pi {
		herr += 2 * math.Pi
	}
	hb := binOf(herr, -math.Pi/2, math.Pi/2, a.Cfg.HeadingBins)

	// Upcoming curvature bin (lookahead half a meter).
	k := cl.CurvatureAt(proj.S + 0.5)
	var cb int
	switch {
	case a.Cfg.CurvBins == 1:
		cb = 0
	case k > 0.2:
		cb = a.Cfg.CurvBins - 1
	case k < -0.2:
		cb = 0
	default:
		cb = a.Cfg.CurvBins / 2
	}
	return (lb*a.Cfg.HeadingBins+hb)*a.Cfg.CurvBins + cb
}

func binOf(v, lo, hi float64, bins int) int {
	if v <= lo {
		return 0
	}
	if v >= hi {
		return bins - 1
	}
	i := int((v - lo) / (hi - lo) * float64(bins))
	if i >= bins {
		i = bins - 1
	}
	return i
}

func (a *Agent) bestAction(state int) int {
	base := state * len(a.Cfg.Actions)
	best, bi := math.Inf(-1), 0
	for i := 0; i < len(a.Cfg.Actions); i++ {
		if q := a.Q[base+i]; q > best {
			best, bi = q, i
		}
	}
	return bi
}

// TrainStats reports the learning curve.
type TrainStats struct {
	EpisodeReturns []float64
	Crashes        int
}

// Train runs Q-learning episodes on the track. Each episode starts at a
// random arclength with zero speed.
func (a *Agent) Train() (TrainStats, error) {
	rng := rand.New(rand.NewSource(a.Cfg.Seed))
	dt := 1.0 / a.Cfg.Hz
	nActions := len(a.Cfg.Actions)
	halfW := a.trk.Width/2 + 0.1
	stats := TrainStats{}

	for ep := 0; ep < a.Cfg.Episodes; ep++ {
		frac := float64(ep) / math.Max(1, float64(a.Cfg.Episodes-1))
		eps := a.Cfg.EpsilonStart + (a.Cfg.EpsilonEnd-a.Cfg.EpsilonStart)*frac
		car, err := sim.NewCar(a.car)
		if err != nil {
			return stats, err
		}
		s0 := rng.Float64() * a.trk.Centerline.Length()
		x, y, h := a.trk.StartPose(s0)
		car.Reset(x, y, h)
		prevS := s0
		var epReturn float64

		state := a.stateOf(car.State)
		for step := 0; step < a.Cfg.StepsPerEp; step++ {
			var action int
			if rng.Float64() < eps {
				action = rng.Intn(nActions)
			} else {
				action = a.bestAction(state)
			}
			car.Step(a.Cfg.Actions[action], a.Cfg.Throttle, dt)

			proj := a.trk.Centerline.Project(track.Point{X: car.State.X, Y: car.State.Y})
			ds := proj.S - prevS
			L := a.trk.Centerline.Length()
			if ds > L/2 {
				ds -= L
			} else if ds < -L/2 {
				ds += L
			}
			prevS = proj.S

			reward := a.Cfg.ProgressGain*ds - a.Cfg.LateralPenalty*math.Abs(proj.Lateral)*dt
			done := false
			if math.Abs(proj.Lateral) > halfW {
				reward -= a.Cfg.CrashPenalty
				stats.Crashes++
				done = true
			}
			next := a.stateOf(car.State)

			// Q update.
			base := state*nActions + action
			target := reward
			if !done {
				target += a.Cfg.Gamma * a.Q[next*nActions+a.bestAction(next)]
			}
			a.Q[base] += a.Cfg.Alpha * (target - a.Q[base])
			epReturn += reward
			state = next
			if done {
				break
			}
		}
		stats.EpisodeReturns = append(stats.EpisodeReturns, epReturn)
	}
	return stats, nil
}

// Drive implements sim.Driver with the greedy learned policy.
func (a *Agent) Drive(st sim.CarState) (float64, float64) {
	return a.Cfg.Actions[a.bestAction(a.stateOf(st))], a.Cfg.Throttle
}

// MeanReturn averages the last n episode returns (a learning-curve probe).
func (s TrainStats) MeanReturn(lastN int) float64 {
	if len(s.EpisodeReturns) == 0 {
		return 0
	}
	if lastN > len(s.EpisodeReturns) {
		lastN = len(s.EpisodeReturns)
	}
	var sum float64
	for _, r := range s.EpisodeReturns[len(s.EpisodeReturns)-lastN:] {
		sum += r
	}
	return sum / float64(lastN)
}
