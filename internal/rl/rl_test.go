package rl

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/track"
)

func agentFixture(t testing.TB, cfg Config) *Agent {
	t.Helper()
	trk, err := track.DefaultOval()
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(cfg, trk, sim.DefaultCarConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"few bins":      func(c *Config) { c.LateralBins = 1 },
		"one action":    func(c *Config) { c.Actions = []float64{0} },
		"bad alpha":     func(c *Config) { c.Alpha = 0 },
		"bad gamma":     func(c *Config) { c.Gamma = 1 },
		"no episodes":   func(c *Config) { c.Episodes = 0 },
		"zero throttle": func(c *Config) { c.Throttle = 0 },
		"zero hz":       func(c *Config) { c.Hz = 0 },
	}
	for name, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestNewAgentValidation(t *testing.T) {
	trk, err := track.DefaultOval()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAgent(DefaultConfig(), nil, sim.DefaultCarConfig()); err == nil {
		t.Error("nil track accepted")
	}
	bad := sim.DefaultCarConfig()
	bad.Wheelbase = 0
	if _, err := NewAgent(DefaultConfig(), trk, bad); err == nil {
		t.Error("invalid car accepted")
	}
}

func TestStateDiscretizationInRange(t *testing.T) {
	a := agentFixture(t, DefaultConfig())
	states := a.Cfg.LateralBins * a.Cfg.HeadingBins * a.Cfg.CurvBins
	// Probe many poses; state index must stay in range.
	for i := 0; i < 500; i++ {
		st := sim.CarState{
			X:       float64(i%20)/2 - 3,
			Y:       float64(i%13)/3 - 2,
			Heading: float64(i) * 0.1,
		}
		s := a.stateOf(st)
		if s < 0 || s >= states {
			t.Fatalf("state %d out of [0,%d)", s, states)
		}
	}
}

func TestLearningImproves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Episodes = 220
	cfg.StepsPerEp = 200
	a := agentFixture(t, cfg)
	stats, err := a.Train()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.EpisodeReturns) != cfg.Episodes {
		t.Fatalf("got %d episode returns", len(stats.EpisodeReturns))
	}
	early := meanOf(stats.EpisodeReturns[:40])
	late := stats.MeanReturn(40)
	if late <= early {
		t.Errorf("no learning: early %.2f late %.2f", early, late)
	}
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestTrainedAgentDrives is the extension's acceptance test: the learned
// greedy policy must make meaningful forward progress around the track,
// far more than an untrained agent.
func TestTrainedAgentDrives(t *testing.T) {
	if testing.Short() {
		t.Skip("RL training loop")
	}
	cfg := DefaultConfig()
	a := agentFixture(t, cfg)
	if _, err := a.Train(); err != nil {
		t.Fatal(err)
	}

	progress := func(agent *Agent) float64 {
		trk := agent.trk
		car, err := sim.NewCar(agent.car)
		if err != nil {
			t.Fatal(err)
		}
		x, y, h := trk.StartPose(0)
		car.Reset(x, y, h)
		cl := trk.Centerline
		prev := 0.0
		total := 0.0
		for i := 0; i < 600; i++ {
			s, th := agent.Drive(car.State)
			car.Step(s, th, 0.05)
			proj := cl.Project(track.Point{X: car.State.X, Y: car.State.Y})
			ds := proj.S - prev
			L := cl.Length()
			if ds > L/2 {
				ds -= L
			} else if ds < -L/2 {
				ds += L
			}
			total += ds
			prev = proj.S
			if math.Abs(proj.Lateral) > trk.Width/2+0.1 {
				break // crashed; progress stops here
			}
		}
		return total
	}

	trained := progress(a)
	fresh := agentFixture(t, cfg)
	untrained := progress(fresh)
	if trained < 3.0 {
		t.Errorf("trained agent progressed only %.2f m", trained)
	}
	if trained <= untrained {
		t.Errorf("training did not help: %.2f vs %.2f", trained, untrained)
	}
	t.Logf("progress: trained %.1f m, untrained %.1f m", trained, untrained)
}

func TestDriveOutputsValidCommands(t *testing.T) {
	a := agentFixture(t, DefaultConfig())
	s, th := a.Drive(sim.CarState{})
	if s < -1 || s > 1 || th <= 0 || th > 1 {
		t.Errorf("command (%g, %g)", s, th)
	}
	// Compatible with the simulator session API.
	var _ sim.Driver = a
}
