package tub

import (
	"archive/tar"
	"bytes"
	"testing"
)

// FuzzUnpack hardens the tar extraction path: arbitrary bytes must never
// escape the target directory or panic — only return errors.
func FuzzUnpack(f *testing.F) {
	// Seed: a valid one-file archive.
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	tw.WriteHeader(&tar.Header{Name: "manifest.json", Mode: 0o644, Size: 2, Typeflag: tar.TypeReg})
	tw.Write([]byte("{}"))
	tw.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("not a tar at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		// Must not panic; errors are fine.
		_, _ = Unpack(bytes.NewReader(data), dir)
	})
}
