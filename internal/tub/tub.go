// Package tub implements the DonkeyCar "tub" dataset format the paper
// describes in §3.3: datasets are directories holding .catalog files
// (JSON-lines of steering/throttle records), .catalog_manifest files with
// per-catalog bookkeeping, a manifest.json where records are marked for
// deletion, and an images directory with one image per record.
package tub

import (
	"encoding/json"
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/sim"
)

// Standard DonkeyCar record keys.
const (
	KeyImage    = "cam/image_array"
	KeyAngle    = "user/angle"
	KeyThrottle = "user/throttle"
	KeyMode     = "user/mode"
	KeyIndex    = "_index"
	KeyTimeMS   = "_timestamp_ms"
)

// DefaultCatalogSize is how many records each .catalog chunk holds.
const DefaultCatalogSize = 1000

// StoredRecord is one tub record as persisted on disk.
type StoredRecord struct {
	Index    int     `json:"_index"`
	TimeMS   int64   `json:"_timestamp_ms"`
	Image    string  `json:"cam/image_array"`
	Angle    float64 `json:"user/angle"`
	Throttle float64 `json:"user/throttle"`
	Mode     string  `json:"user/mode"`
}

// catalogManifest mirrors DonkeyCar's .catalog_manifest sidecar.
type catalogManifest struct {
	Path       string `json:"path"`
	StartIndex int    `json:"start_index"`
	Count      int    `json:"line_count"`
}

// manifest is the tub-level manifest.json: schema info plus the deletion
// set tubclean mutates.
type manifest struct {
	Inputs         []string `json:"inputs"`
	Types          []string `json:"types"`
	CatalogPaths   []string `json:"paths"`
	CurrentIndex   int      `json:"current_index"`
	DeletedIndexes []int    `json:"deleted_indexes"`
	SessionID      string   `json:"session_id,omitempty"`
}

// Tub is an on-disk dataset directory.
type Tub struct {
	Dir string
}

// ErrNotTub is returned when opening a directory without a manifest.json.
var ErrNotTub = errors.New("tub: directory has no manifest.json")

const (
	manifestName = "manifest.json"
	imagesDir    = "images"
)

// Create initializes a new, empty tub directory (created if absent).
func Create(dir string) (*Tub, error) {
	if err := os.MkdirAll(filepath.Join(dir, imagesDir), 0o755); err != nil {
		return nil, fmt.Errorf("tub: create: %w", err)
	}
	t := &Tub{Dir: dir}
	m := manifest{
		Inputs:         []string{KeyImage, KeyAngle, KeyThrottle, KeyMode},
		Types:          []string{"image_array", "float", "float", "str"},
		DeletedIndexes: []int{},
		CatalogPaths:   []string{},
	}
	if err := t.writeManifest(&m); err != nil {
		return nil, err
	}
	return t, nil
}

// Open opens an existing tub directory.
func Open(dir string) (*Tub, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotTub, dir)
		}
		return nil, fmt.Errorf("tub: open: %w", err)
	}
	return &Tub{Dir: dir}, nil
}

func (t *Tub) readManifest() (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(t.Dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("tub: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("tub: parse manifest: %w", err)
	}
	return &m, nil
}

func (t *Tub) writeManifest(m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("tub: encode manifest: %w", err)
	}
	return os.WriteFile(filepath.Join(t.Dir, manifestName), data, 0o644)
}

// Count returns the number of live (non-deleted) records.
func (t *Tub) Count() (int, error) {
	m, err := t.readManifest()
	if err != nil {
		return 0, err
	}
	return m.CurrentIndex - len(m.DeletedIndexes), nil
}

// TotalCount returns the number of records ever written, deleted or not.
func (t *Tub) TotalCount() (int, error) {
	m, err := t.readManifest()
	if err != nil {
		return 0, err
	}
	return m.CurrentIndex, nil
}

// DeletedIndexes returns a sorted copy of the deletion set.
func (t *Tub) DeletedIndexes() ([]int, error) {
	m, err := t.readManifest()
	if err != nil {
		return nil, err
	}
	out := append([]int(nil), m.DeletedIndexes...)
	sort.Ints(out)
	return out, nil
}

// MarkDeleted adds record indexes to the deletion set (idempotent). This is
// what the tubclean UI does when the student selects bad video segments.
func (t *Tub) MarkDeleted(indexes ...int) error {
	m, err := t.readManifest()
	if err != nil {
		return err
	}
	have := make(map[int]bool, len(m.DeletedIndexes))
	for _, i := range m.DeletedIndexes {
		have[i] = true
	}
	for _, i := range indexes {
		if i < 0 || i >= m.CurrentIndex {
			return fmt.Errorf("tub: index %d out of range [0,%d)", i, m.CurrentIndex)
		}
		if !have[i] {
			m.DeletedIndexes = append(m.DeletedIndexes, i)
			have[i] = true
		}
	}
	sort.Ints(m.DeletedIndexes)
	return t.writeManifest(m)
}

// Restore removes indexes from the deletion set.
func (t *Tub) Restore(indexes ...int) error {
	m, err := t.readManifest()
	if err != nil {
		return err
	}
	drop := make(map[int]bool, len(indexes))
	for _, i := range indexes {
		drop[i] = true
	}
	kept := m.DeletedIndexes[:0]
	for _, i := range m.DeletedIndexes {
		if !drop[i] {
			kept = append(kept, i)
		}
	}
	m.DeletedIndexes = kept
	return t.writeManifest(m)
}

// imageFileName mirrors DonkeyCar's naming convention.
func imageFileName(index int) string {
	return fmt.Sprintf("%d_cam_image_array_.png", index)
}

// saveFrame encodes a sim.Frame as PNG under images/.
func (t *Tub) saveFrame(index int, f *sim.Frame) (string, error) {
	name := imageFileName(index)
	img := image.NewRGBA(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			px := f.At(x, y)
			var c color.RGBA
			if f.C == 3 {
				c = color.RGBA{px[0], px[1], px[2], 255}
			} else {
				c = color.RGBA{px[0], px[0], px[0], 255}
			}
			img.Set(x, y, c)
		}
	}
	fp, err := os.Create(filepath.Join(t.Dir, imagesDir, name))
	if err != nil {
		return "", fmt.Errorf("tub: save image: %w", err)
	}
	defer fp.Close()
	if err := png.Encode(fp, img); err != nil {
		return "", fmt.Errorf("tub: encode image: %w", err)
	}
	return name, nil
}

// LoadFrame reads a record's image back as a sim.Frame with the requested
// channel count (1 or 3).
func (t *Tub) LoadFrame(name string, channels int) (*sim.Frame, error) {
	fp, err := os.Open(filepath.Join(t.Dir, imagesDir, name))
	if err != nil {
		return nil, fmt.Errorf("tub: load image: %w", err)
	}
	defer fp.Close()
	img, err := png.Decode(fp)
	if err != nil {
		return nil, fmt.Errorf("tub: decode image: %w", err)
	}
	b := img.Bounds()
	f, err := sim.NewFrame(b.Dx(), b.Dy(), channels)
	if err != nil {
		return nil, err
	}
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, g, bb, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			if channels == 3 {
				f.Set(x, y, uint8(r>>8), uint8(g>>8), uint8(bb>>8))
			} else {
				lum := 0.299*float64(r>>8) + 0.587*float64(g>>8) + 0.114*float64(bb>>8)
				f.Set(x, y, uint8(lum))
			}
		}
	}
	return f, nil
}
