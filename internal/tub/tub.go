// Package tub implements the DonkeyCar "tub" dataset format the paper
// describes in §3.3: datasets are directories holding .catalog files
// (JSON-lines of steering/throttle records), .catalog_manifest files with
// per-catalog bookkeeping, a manifest.json where records are marked for
// deletion, and an images directory with one image per record.
package tub

import (
	"encoding/json"
	"errors"
	"fmt"
	"image"
	"image/png"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Standard DonkeyCar record keys.
const (
	KeyImage    = "cam/image_array"
	KeyAngle    = "user/angle"
	KeyThrottle = "user/throttle"
	KeyMode     = "user/mode"
	KeyIndex    = "_index"
	KeyTimeMS   = "_timestamp_ms"
)

// DefaultCatalogSize is how many records each .catalog chunk holds.
const DefaultCatalogSize = 1000

// StoredRecord is one tub record as persisted on disk.
type StoredRecord struct {
	Index    int     `json:"_index"`
	TimeMS   int64   `json:"_timestamp_ms"`
	Image    string  `json:"cam/image_array"`
	Angle    float64 `json:"user/angle"`
	Throttle float64 `json:"user/throttle"`
	Mode     string  `json:"user/mode"`
}

// catalogManifest mirrors DonkeyCar's .catalog_manifest sidecar.
type catalogManifest struct {
	Path       string `json:"path"`
	StartIndex int    `json:"start_index"`
	Count      int    `json:"line_count"`
}

// manifest is the tub-level manifest.json: schema info plus the deletion
// set tubclean mutates.
type manifest struct {
	Inputs         []string `json:"inputs"`
	Types          []string `json:"types"`
	CatalogPaths   []string `json:"paths"`
	CurrentIndex   int      `json:"current_index"`
	DeletedIndexes []int    `json:"deleted_indexes"`
	SessionID      string   `json:"session_id,omitempty"`
}

// Tub is an on-disk dataset directory.
type Tub struct {
	Dir string
}

// Write-through frame cache shared by all Tub handles: PNG encoding is
// lossless for the formats saveFrame writes, so a frame saved (or decoded
// once) can serve later LoadFrame calls without reopening the file — file
// opens dominate the collect→clean→train loop on slow filesystems, and the
// cleaner, the trainer, and the collector each Open their own handle to
// the same directory. Keyed by the image file path; entries are in the
// file's native channel count and converted per request. Bounded by
// frameCacheMaxBytes: past it, new frames are simply not cached (files
// remain the source of truth).
var frameCache = struct {
	sync.Mutex
	m     map[string]*sim.Frame
	bytes int
}{m: make(map[string]*sim.Frame)}

const frameCacheMaxBytes = 64 << 20

func (t *Tub) framePath(name string) string {
	return filepath.Join(t.Dir, imagesDir, name)
}

func cachePutFrame(path string, f *sim.Frame) {
	frameCache.Lock()
	defer frameCache.Unlock()
	if _, ok := frameCache.m[path]; ok {
		return
	}
	if frameCache.bytes+len(f.Pix) > frameCacheMaxBytes {
		return
	}
	frameCache.m[path] = f
	frameCache.bytes += len(f.Pix)
}

func cacheGetFrame(path string) *sim.Frame {
	frameCache.Lock()
	defer frameCache.Unlock()
	return frameCache.m[path]
}

// cachePurgeDir drops cached frames under dir, so re-initializing a tub in
// a previously used directory cannot serve stale pixels.
func cachePurgeDir(dir string) {
	prefix := filepath.Join(dir, imagesDir) + string(filepath.Separator)
	frameCache.Lock()
	defer frameCache.Unlock()
	for p, f := range frameCache.m {
		if strings.HasPrefix(p, prefix) {
			frameCache.bytes -= len(f.Pix)
			delete(frameCache.m, p)
		}
	}
}

// ErrNotTub is returned when opening a directory without a manifest.json.
var ErrNotTub = errors.New("tub: directory has no manifest.json")

const (
	manifestName = "manifest.json"
	imagesDir    = "images"
)

// Create initializes a new, empty tub directory (created if absent).
func Create(dir string) (*Tub, error) {
	if err := os.MkdirAll(filepath.Join(dir, imagesDir), 0o755); err != nil {
		return nil, fmt.Errorf("tub: create: %w", err)
	}
	cachePurgeDir(dir)
	t := &Tub{Dir: dir}
	m := manifest{
		Inputs:         []string{KeyImage, KeyAngle, KeyThrottle, KeyMode},
		Types:          []string{"image_array", "float", "float", "str"},
		DeletedIndexes: []int{},
		CatalogPaths:   []string{},
	}
	if err := t.writeManifest(&m); err != nil {
		return nil, err
	}
	return t, nil
}

// Open opens an existing tub directory.
func Open(dir string) (*Tub, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotTub, dir)
		}
		return nil, fmt.Errorf("tub: open: %w", err)
	}
	return &Tub{Dir: dir}, nil
}

func (t *Tub) readManifest() (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(t.Dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("tub: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("tub: parse manifest: %w", err)
	}
	return &m, nil
}

func (t *Tub) writeManifest(m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("tub: encode manifest: %w", err)
	}
	return os.WriteFile(filepath.Join(t.Dir, manifestName), data, 0o644)
}

// Count returns the number of live (non-deleted) records.
func (t *Tub) Count() (int, error) {
	m, err := t.readManifest()
	if err != nil {
		return 0, err
	}
	return m.CurrentIndex - len(m.DeletedIndexes), nil
}

// TotalCount returns the number of records ever written, deleted or not.
func (t *Tub) TotalCount() (int, error) {
	m, err := t.readManifest()
	if err != nil {
		return 0, err
	}
	return m.CurrentIndex, nil
}

// DeletedIndexes returns a sorted copy of the deletion set.
func (t *Tub) DeletedIndexes() ([]int, error) {
	m, err := t.readManifest()
	if err != nil {
		return nil, err
	}
	out := append([]int(nil), m.DeletedIndexes...)
	sort.Ints(out)
	return out, nil
}

// MarkDeleted adds record indexes to the deletion set (idempotent). This is
// what the tubclean UI does when the student selects bad video segments.
func (t *Tub) MarkDeleted(indexes ...int) error {
	m, err := t.readManifest()
	if err != nil {
		return err
	}
	have := make(map[int]bool, len(m.DeletedIndexes))
	for _, i := range m.DeletedIndexes {
		have[i] = true
	}
	for _, i := range indexes {
		if i < 0 || i >= m.CurrentIndex {
			return fmt.Errorf("tub: index %d out of range [0,%d)", i, m.CurrentIndex)
		}
		if !have[i] {
			m.DeletedIndexes = append(m.DeletedIndexes, i)
			have[i] = true
		}
	}
	sort.Ints(m.DeletedIndexes)
	return t.writeManifest(m)
}

// Restore removes indexes from the deletion set.
func (t *Tub) Restore(indexes ...int) error {
	m, err := t.readManifest()
	if err != nil {
		return err
	}
	drop := make(map[int]bool, len(indexes))
	for _, i := range indexes {
		drop[i] = true
	}
	kept := m.DeletedIndexes[:0]
	for _, i := range m.DeletedIndexes {
		if !drop[i] {
			kept = append(kept, i)
		}
	}
	m.DeletedIndexes = kept
	return t.writeManifest(m)
}

// imageFileName mirrors DonkeyCar's naming convention.
func imageFileName(index int) string {
	return fmt.Sprintf("%d_cam_image_array_.png", index)
}

// pngPool recycles the PNG encoder's internal scratch (zlib writer and
// filter rows) across saveFrame calls; without it every record encode
// rebuilds a full deflate state.
type pngPool struct{ pool sync.Pool }

func (p *pngPool) Get() *png.EncoderBuffer {
	b, _ := p.pool.Get().(*png.EncoderBuffer)
	return b
}

func (p *pngPool) Put(b *png.EncoderBuffer) { p.pool.Put(b) }

var frameEncoder = png.Encoder{CompressionLevel: png.BestSpeed, BufferPool: &pngPool{}}

// saveFrame encodes a sim.Frame as PNG under images/. Grayscale frames
// are stored as 8-bit grayscale PNGs (a quarter of the RGBA bytes);
// 3-channel frames as NRGBA. Pixels move with bulk copies rather than
// per-pixel Set calls, which would box a color.Color per pixel.
func (t *Tub) saveFrame(index int, f *sim.Frame) (string, error) {
	name := imageFileName(index)
	var img image.Image
	if f.C == 1 {
		g := image.NewGray(image.Rect(0, 0, f.W, f.H))
		copy(g.Pix, f.Pix)
		img = g
	} else {
		rgba := image.NewNRGBA(image.Rect(0, 0, f.W, f.H))
		for i, o := 0, 0; i+2 < len(f.Pix); i, o = i+3, o+4 {
			rgba.Pix[o] = f.Pix[i]
			rgba.Pix[o+1] = f.Pix[i+1]
			rgba.Pix[o+2] = f.Pix[i+2]
			rgba.Pix[o+3] = 255
		}
		img = rgba
	}
	fp, err := os.Create(filepath.Join(t.Dir, imagesDir, name))
	if err != nil {
		return "", fmt.Errorf("tub: save image: %w", err)
	}
	defer fp.Close()
	if err := frameEncoder.Encode(fp, img); err != nil {
		return "", fmt.Errorf("tub: encode image: %w", err)
	}
	cachePutFrame(t.framePath(name), cloneFrame(f))
	return name, nil
}

func cloneFrame(f *sim.Frame) *sim.Frame {
	c := *f
	c.Pix = append([]uint8(nil), f.Pix...)
	return &c
}

// convertFrame produces a copy of src with the requested channel count,
// using the same math as the PNG decode path (PNG is lossless for the
// formats saveFrame writes, so this equals a disk round trip bit-for-bit).
func convertFrame(src *sim.Frame, channels int) (*sim.Frame, error) {
	f, err := sim.NewFrame(src.W, src.H, channels)
	if err != nil {
		return nil, err
	}
	switch {
	case src.C == channels:
		copy(f.Pix, src.Pix)
	case src.C == 1: // gray → rgb
		for i, v := range src.Pix {
			f.Pix[i*3], f.Pix[i*3+1], f.Pix[i*3+2] = v, v, v
		}
	default: // rgb → gray
		for i := 0; i < len(f.Pix); i++ {
			r, g, b := src.Pix[i*3], src.Pix[i*3+1], src.Pix[i*3+2]
			lum := 0.299*float64(r) + 0.587*float64(g) + 0.114*float64(b)
			f.Pix[i] = uint8(lum)
		}
	}
	return f, nil
}

// LoadFrame reads a record's image back as a sim.Frame with the requested
// channel count (1 or 3).
func (t *Tub) LoadFrame(name string, channels int) (*sim.Frame, error) {
	path := t.framePath(name)
	if cached := cacheGetFrame(path); cached != nil {
		return convertFrame(cached, channels)
	}
	fp, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tub: load image: %w", err)
	}
	defer fp.Close()
	img, err := png.Decode(fp)
	if err != nil {
		return nil, fmt.Errorf("tub: decode image: %w", err)
	}
	b := img.Bounds()
	// Fast paths: read the decoded image's Pix buffer directly into a
	// frame with the file's native channel count (the generic fallback
	// goes through the color.Color interface, which allocates per pixel),
	// cache it, and convert per request.
	var native *sim.Frame
	switch src := img.(type) {
	case *image.Gray:
		native, err = sim.NewFrame(b.Dx(), b.Dy(), 1)
		if err != nil {
			return nil, err
		}
		loadFromStrided(native, src.Pix, src.Stride, 1)
	case *image.NRGBA:
		native, err = sim.NewFrame(b.Dx(), b.Dy(), 3)
		if err != nil {
			return nil, err
		}
		loadFromStrided(native, src.Pix, src.Stride, 4)
	case *image.RGBA:
		native, err = sim.NewFrame(b.Dx(), b.Dy(), 3)
		if err != nil {
			return nil, err
		}
		loadFromStrided(native, src.Pix, src.Stride, 4)
	default:
		native, err = sim.NewFrame(b.Dx(), b.Dy(), 3)
		if err != nil {
			return nil, err
		}
		for y := 0; y < b.Dy(); y++ {
			for x := 0; x < b.Dx(); x++ {
				r, g, bb, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
				native.Set(x, y, uint8(r>>8), uint8(g>>8), uint8(bb>>8))
			}
		}
	}
	cachePutFrame(path, native)
	return convertFrame(native, channels)
}

// loadFromStrided fills f (in the source's native channel count) from a
// decoded pixel buffer with the given row stride and source pixel width
// (1 = grayscale, 4 = RGBA/NRGBA).
func loadFromStrided(f *sim.Frame, pix []uint8, stride, srcC int) {
	for y := 0; y < f.H; y++ {
		row := pix[y*stride:]
		if srcC == 1 {
			copy(f.Pix[y*f.W:(y+1)*f.W], row[:f.W])
			continue
		}
		for x := 0; x < f.W; x++ {
			o := (y*f.W + x) * 3
			f.Pix[o], f.Pix[o+1], f.Pix[o+2] = row[x*4], row[x*4+1], row[x*4+2]
		}
	}
}
