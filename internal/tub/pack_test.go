package tub

import (
	"archive/tar"
	"bytes"
	"testing"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	src, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, src, 12, func(i int) float64 { return float64(i) / 10 })
	if err := src.MarkDeleted(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Pack(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Unpack(bytes.NewReader(buf.Bytes()), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n, err := dst.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Errorf("live records after round trip = %d, want 11", n)
	}
	recs, err := dst.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Images travel too.
	if _, err := dst.LoadFrame(recs[0].Image, 1); err != nil {
		t.Errorf("image lost: %v", err)
	}
	// Deletion marks travel.
	del, _ := dst.DeletedIndexes()
	if len(del) != 1 || del[0] != 3 {
		t.Errorf("deletions lost: %v", del)
	}
}

func TestUnpackRejectsTraversal(t *testing.T) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	tw.WriteHeader(&tar.Header{Name: "../evil", Mode: 0o644, Size: 1, Typeflag: tar.TypeReg})
	tw.Write([]byte("x"))
	tw.Close()
	if _, err := Unpack(bytes.NewReader(buf.Bytes()), t.TempDir()); err == nil {
		t.Error("path traversal accepted")
	}
}

func TestUnpackRejectsWeirdEntries(t *testing.T) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	tw.WriteHeader(&tar.Header{Name: "link", Linkname: "/etc/passwd", Typeflag: tar.TypeSymlink})
	tw.Close()
	if _, err := Unpack(bytes.NewReader(buf.Bytes()), t.TempDir()); err == nil {
		t.Error("symlink entry accepted")
	}
}

func TestUnpackGarbage(t *testing.T) {
	if _, err := Unpack(bytes.NewReader([]byte("not a tar")), t.TempDir()); err == nil {
		t.Error("garbage accepted")
	}
}
