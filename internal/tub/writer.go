package tub

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sim"
)

// Writer appends records to a tub, chunking them into .catalog files of
// CatalogSize records each, exactly like DonkeyCar's TubWriter.
type Writer struct {
	tub         *Tub
	CatalogSize int

	m       *manifest
	cur     *os.File
	buf     *bufio.Writer
	curMeta catalogManifest
	closed  bool
}

// NewWriter opens a writer that appends to the tub. Records written resume
// from the tub's current index.
func NewWriter(t *Tub) (*Writer, error) {
	m, err := t.readManifest()
	if err != nil {
		return nil, err
	}
	return &Writer{tub: t, CatalogSize: DefaultCatalogSize, m: m}, nil
}

func catalogName(n int) string { return fmt.Sprintf("catalog_%d.catalog", n) }

func (w *Writer) openCatalog() error {
	n := len(w.m.CatalogPaths)
	name := catalogName(n)
	f, err := os.Create(filepath.Join(w.tub.Dir, name))
	if err != nil {
		return fmt.Errorf("tub: create catalog: %w", err)
	}
	w.cur = f
	w.buf = bufio.NewWriter(f)
	w.curMeta = catalogManifest{Path: name, StartIndex: w.m.CurrentIndex}
	w.m.CatalogPaths = append(w.m.CatalogPaths, name)
	return nil
}

func (w *Writer) closeCatalog() error {
	if w.cur == nil {
		return nil
	}
	if err := w.buf.Flush(); err != nil {
		return err
	}
	if err := w.cur.Close(); err != nil {
		return err
	}
	meta, err := json.Marshal(w.curMeta)
	if err != nil {
		return err
	}
	side := w.curMeta.Path + "_manifest"
	if err := os.WriteFile(filepath.Join(w.tub.Dir, side), meta, 0o644); err != nil {
		return fmt.Errorf("tub: write catalog manifest: %w", err)
	}
	w.cur = nil
	w.buf = nil
	return nil
}

// Write persists one driving record (image + labels) and returns its index.
func (w *Writer) Write(rec sim.Record) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("tub: writer is closed")
	}
	if rec.Frame == nil {
		return 0, fmt.Errorf("tub: record has no frame")
	}
	if w.cur == nil || w.curMeta.Count >= w.CatalogSize {
		if err := w.closeCatalog(); err != nil {
			return 0, err
		}
		if err := w.openCatalog(); err != nil {
			return 0, err
		}
	}
	idx := w.m.CurrentIndex
	imgName, err := w.tub.saveFrame(idx, rec.Frame)
	if err != nil {
		return 0, err
	}
	stored := StoredRecord{
		Index:    idx,
		TimeMS:   rec.Timestamp.UnixMilli(),
		Image:    imgName,
		Angle:    rec.Steering,
		Throttle: rec.Throttle,
		Mode:     "user",
	}
	line, err := json.Marshal(stored)
	if err != nil {
		return 0, err
	}
	if _, err := w.buf.Write(append(line, '\n')); err != nil {
		return 0, fmt.Errorf("tub: write record: %w", err)
	}
	w.curMeta.Count++
	w.m.CurrentIndex++
	return idx, nil
}

// WriteSession persists an entire drive session. It returns the indexes of
// records whose ground truth marked them bad, which tests use as a tubclean
// oracle.
func (w *Writer) WriteSession(res sim.SessionResult) (badIndexes []int, err error) {
	for _, rec := range res.Records {
		idx, err := w.Write(rec)
		if err != nil {
			return nil, err
		}
		if rec.Bad {
			badIndexes = append(badIndexes, idx)
		}
	}
	return badIndexes, nil
}

// Close flushes the open catalog and persists the manifest. The writer
// cannot be used afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.closeCatalog(); err != nil {
		return err
	}
	return w.tub.writeManifest(w.m)
}
