package tub

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sim"
)

func mkFrame(t testing.TB, w, h, c int, fill uint8) *sim.Frame {
	t.Helper()
	f, err := sim.NewFrame(w, h, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Pix {
		f.Pix[i] = fill
	}
	return f
}

func mkRecord(t testing.TB, i int, angle float64) sim.Record {
	t.Helper()
	return sim.Record{
		Index:     i,
		Frame:     mkFrame(t, 8, 6, 1, uint8(i%256)),
		Steering:  angle,
		Throttle:  0.3,
		Timestamp: time.Unix(1_700_000_000, 0).Add(time.Duration(i) * 50 * time.Millisecond),
	}
}

func writeN(t testing.TB, tb *Tub, n int, angle func(int) float64) {
	t.Helper()
	w, err := NewWriter(tb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := w.Write(mkRecord(t, i, angle(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingManifest(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("expected ErrNotTub")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, tb, 25, func(i int) float64 { return float64(i) / 100 })
	recs, err := tb.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 25 {
		t.Fatalf("got %d records, want 25", len(recs))
	}
	for i, r := range recs {
		if r.Index != i {
			t.Errorf("record %d has index %d", i, r.Index)
		}
		if math.Abs(r.Angle-float64(i)/100) > 1e-12 {
			t.Errorf("record %d angle %g", i, r.Angle)
		}
		if r.Mode != "user" {
			t.Errorf("record %d mode %q", i, r.Mode)
		}
	}
}

func TestCatalogChunking(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(tb)
	if err != nil {
		t.Fatal(err)
	}
	w.CatalogSize = 10
	for i := 0; i < 25; i++ {
		if _, err := w.Write(mkRecord(t, i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cats, err := tb.Catalogs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 3 {
		t.Fatalf("got %d catalogs, want 3", len(cats))
	}
	if cats[0].Count != 10 || cats[1].Count != 10 || cats[2].Count != 5 {
		t.Errorf("catalog counts = %d,%d,%d", cats[0].Count, cats[1].Count, cats[2].Count)
	}
	if cats[1].StartIndex != 10 || cats[2].StartIndex != 20 {
		t.Errorf("start indexes = %d,%d", cats[1].StartIndex, cats[2].StartIndex)
	}
}

func TestAppendAcrossWriters(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, tb, 5, func(int) float64 { return 0 })
	writeN(t, tb, 5, func(int) float64 { return 1 })
	recs, err := tb.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	if recs[9].Index != 9 {
		t.Errorf("last index %d, want 9", recs[9].Index)
	}
}

func TestMarkDeletedAndRestore(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, tb, 10, func(int) float64 { return 0 })
	if err := tb.MarkDeleted(2, 3, 3, 7); err != nil {
		t.Fatal(err)
	}
	del, err := tb.DeletedIndexes()
	if err != nil {
		t.Fatal(err)
	}
	if len(del) != 3 {
		t.Fatalf("deleted = %v, want 3 unique", del)
	}
	n, err := tb.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("live count = %d, want 7", n)
	}
	recs, err := tb.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Index == 2 || r.Index == 3 || r.Index == 7 {
			t.Errorf("deleted record %d still returned", r.Index)
		}
	}
	if err := tb.Restore(3); err != nil {
		t.Fatal(err)
	}
	n, _ = tb.Count()
	if n != 8 {
		t.Errorf("count after restore = %d, want 8", n)
	}
}

func TestMarkDeletedOutOfRange(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, tb, 3, func(int) float64 { return 0 })
	if err := tb.MarkDeleted(5); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := tb.MarkDeleted(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestImagesRoundTrip(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(tb)
	if err != nil {
		t.Fatal(err)
	}
	f := mkFrame(t, 8, 6, 3, 0)
	f.Set(2, 3, 10, 200, 30)
	if _, err := w.Write(sim.Record{Frame: f, Timestamp: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := tb.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tb.LoadFrame(recs[0].Image, 3)
	if err != nil {
		t.Fatal(err)
	}
	px := got.At(2, 3)
	if px[0] != 10 || px[1] != 200 || px[2] != 30 {
		t.Errorf("pixel round trip = %v", px)
	}
	gray, err := tb.LoadFrame(recs[0].Image, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gray.C != 1 {
		t.Error("grayscale load has wrong channels")
	}
}

func TestWriterRejectsNilFrame(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(tb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(sim.Record{}); err == nil {
		t.Error("nil frame accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(mkRecord(t, 0, 0)); err == nil {
		t.Error("write after close accepted")
	}
}

func TestCleanSegments(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, tb, 20, func(int) float64 { return 0 })
	n, err := tb.CleanSegments(Segment{Start: 5, End: 10}, Segment{Start: 15, End: 16})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("marked %d, want 6", n)
	}
	live, _ := tb.Count()
	if live != 14 {
		t.Errorf("live = %d, want 14", live)
	}
	if _, err := tb.CleanSegments(Segment{Start: -1, End: 2}); err == nil {
		t.Error("bad segment accepted")
	}
	if _, err := tb.CleanSegments(Segment{Start: 0, End: 99}); err == nil {
		t.Error("overlong segment accepted")
	}
}

func TestReview(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, tb, 10, func(i int) float64 {
		if i%2 == 0 {
			return 0.9
		}
		return 0
	})
	n, err := tb.Review(func(r StoredRecord) bool { return r.Angle > 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("review marked %d, want 5", n)
	}
}

func TestDetectBadSegmentsFindsSpike(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Smooth driving with a violent incident in records 40-50.
	writeN(t, tb, 100, func(i int) float64 {
		if i >= 40 && i < 50 {
			return 0.95
		}
		return 0.05 * math.Sin(float64(i)/10)
	})
	segs, err := tb.DetectBadSegments(DefaultCleanerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments detected")
	}
	covered := false
	for _, s := range segs {
		if s.Start <= 42 && s.End >= 48 {
			covered = true
		}
		if s.Len() <= 0 {
			t.Errorf("empty segment %+v", s)
		}
	}
	if !covered {
		t.Errorf("incident not covered by %v", segs)
	}
	// Clean driving outside the incident should survive.
	total := 0
	for _, s := range segs {
		total += s.Len()
	}
	if total > 40 {
		t.Errorf("detector too aggressive: marked %d of 100", total)
	}
}

func TestAutoCleanReducesCount(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, tb, 60, func(i int) float64 {
		if i >= 20 && i < 30 {
			return 0.9
		}
		return 0
	})
	marked, err := tb.AutoClean(DefaultCleanerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if marked == 0 {
		t.Fatal("autoclean marked nothing")
	}
	live, _ := tb.Count()
	if live+marked != 60 {
		t.Errorf("live %d + marked %d != 60", live, marked)
	}
}

func TestSizeBytesGrowsWithRecords(t *testing.T) {
	dir := t.TempDir()
	tb, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := tb.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, tb, 5, func(int) float64 { return 0 })
	full, err := tb.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if full <= empty {
		t.Errorf("size did not grow: %d -> %d", empty, full)
	}
	// Images are actually on disk.
	entries, err := os.ReadDir(filepath.Join(dir, "images"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Errorf("images dir has %d files, want 5", len(entries))
	}
}

func TestWriteSessionReportsBad(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(tb)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.SessionResult{}
	for i := 0; i < 6; i++ {
		r := mkRecord(t, i, 0)
		r.Bad = i == 2 || i == 4
		res.Records = append(res.Records, r)
	}
	bad, err := w.WriteSession(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 || bad[0] != 2 || bad[1] != 4 {
		t.Errorf("bad indexes = %v", bad)
	}
}

func TestAtRandomAccess(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(tb)
	if err != nil {
		t.Fatal(err)
	}
	w.CatalogSize = 7 // force multiple chunks
	for i := 0; i < 20; i++ {
		if _, err := w.Write(mkRecord(t, i, float64(i)/100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 6, 7, 13, 19} {
		rec, err := tb.At(idx)
		if err != nil {
			t.Fatalf("At(%d): %v", idx, err)
		}
		if rec.Index != idx || math.Abs(rec.Angle-float64(idx)/100) > 1e-12 {
			t.Errorf("At(%d) = %+v", idx, rec)
		}
	}
	if _, err := tb.At(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := tb.At(20); err == nil {
		t.Error("past-end index accepted")
	}
}

func TestIterStreamsLiveRecords(t *testing.T) {
	tb, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, tb, 15, func(i int) float64 { return 0 })
	if err := tb.MarkDeleted(4, 5); err != nil {
		t.Fatal(err)
	}
	var got []int
	err = tb.Iter(func(r StoredRecord) bool {
		got = append(got, r.Index)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 13 {
		t.Fatalf("iterated %d records, want 13", len(got))
	}
	for _, i := range got {
		if i == 4 || i == 5 {
			t.Error("deleted record iterated")
		}
	}
	// Early stop.
	count := 0
	err = tb.Iter(func(StoredRecord) bool {
		count++
		return count < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("early stop iterated %d", count)
	}
}

func TestMergeMixAndMatch(t *testing.T) {
	a, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, a, 8, func(i int) float64 { return 0.1 })
	b, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, b, 5, func(i int) float64 { return 0.2 })
	// A deleted record in a source must not travel.
	if err := b.MarkDeleted(2); err != nil {
		t.Fatal(err)
	}
	dst, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	copied, err := Merge(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 12 {
		t.Fatalf("copied %d, want 12", copied)
	}
	recs, err := dst.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Fatalf("merged tub has %d records", len(recs))
	}
	// Indexes are re-sequenced and labels survive.
	if recs[0].Angle != 0.1 || recs[8].Angle != 0.2 {
		t.Errorf("labels scrambled: %g, %g", recs[0].Angle, recs[8].Angle)
	}
	for i, r := range recs {
		if r.Index != i {
			t.Fatalf("index %d at position %d", r.Index, i)
		}
	}
	// Images travel.
	if _, err := dst.LoadFrame(recs[11].Image, 1); err != nil {
		t.Errorf("merged image unreadable: %v", err)
	}
}

func TestMergeValidation(t *testing.T) {
	dst, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(nil, dst); err == nil {
		t.Error("nil destination accepted")
	}
	if _, err := Merge(dst); err == nil {
		t.Error("no sources accepted")
	}
	if _, err := Merge(dst, nil); err == nil {
		t.Error("nil source accepted")
	}
}
