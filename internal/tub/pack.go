package tub

import (
	"archive/tar"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Pack streams the tub directory as a tar archive, the wire format used to
// publish sample datasets to the object store and to model the rsync
// transfer to the training node.
func (t *Tub) Pack(w io.Writer) error {
	tw := tar.NewWriter(w)
	err := filepath.Walk(t.Dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(t.Dir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		hdr, err := tar.FileInfoHeader(info, "")
		if err != nil {
			return err
		}
		hdr.Name = filepath.ToSlash(rel)
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = io.Copy(tw, f)
		return err
	})
	if err != nil {
		return fmt.Errorf("tub: pack: %w", err)
	}
	if err := tw.Close(); err != nil {
		return fmt.Errorf("tub: pack: %w", err)
	}
	return nil
}

// Unpack extracts a tar archive produced by Pack into dir and opens the
// resulting tub. Paths escaping dir are rejected.
func Unpack(r io.Reader, dir string) (*Tub, error) {
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tub: unpack: %w", err)
		}
		name := filepath.FromSlash(hdr.Name)
		if strings.Contains(name, "..") || filepath.IsAbs(name) {
			return nil, fmt.Errorf("tub: unpack: unsafe path %q", hdr.Name)
		}
		dst := filepath.Join(dir, name)
		switch hdr.Typeflag {
		case tar.TypeDir:
			if err := os.MkdirAll(dst, 0o755); err != nil {
				return nil, fmt.Errorf("tub: unpack: %w", err)
			}
		case tar.TypeReg:
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				return nil, fmt.Errorf("tub: unpack: %w", err)
			}
			f, err := os.Create(dst)
			if err != nil {
				return nil, fmt.Errorf("tub: unpack: %w", err)
			}
			if _, err := io.Copy(f, tr); err != nil {
				f.Close()
				return nil, fmt.Errorf("tub: unpack: %w", err)
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("tub: unpack: unsupported entry type %d for %q", hdr.Typeflag, hdr.Name)
		}
	}
	return Open(dir)
}
