package tub

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Merge copies the live records of several source tubs into dst in order —
// the "mix and match" pathway (§3.5): students combine sample datasets,
// their own drives, and teammates' drives into one training set. Frames
// are re-encoded under dst's indexing; deletion marks in the sources are
// honored (marked records are not copied).
func Merge(dst *Tub, sources ...*Tub) (copied int, err error) {
	if dst == nil {
		return 0, fmt.Errorf("tub: nil destination")
	}
	if len(sources) == 0 {
		return 0, fmt.Errorf("tub: no source tubs")
	}
	w, err := NewWriter(dst)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := w.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	for si, src := range sources {
		if src == nil {
			return copied, fmt.Errorf("tub: source %d is nil", si)
		}
		recs, err := src.ReadAll()
		if err != nil {
			return copied, fmt.Errorf("tub: source %d: %w", si, err)
		}
		for _, r := range recs {
			// Loading as RGB is lossless for both gray and RGB sources.
			frame, err := src.LoadFrame(r.Image, 3)
			if err != nil {
				return copied, fmt.Errorf("tub: source %d record %d: %w", si, r.Index, err)
			}
			if _, err := w.Write(sim.Record{
				Frame:     frame,
				Steering:  r.Angle,
				Throttle:  r.Throttle,
				Timestamp: time.UnixMilli(r.TimeMS),
			}); err != nil {
				return copied, err
			}
			copied++
		}
	}
	return copied, nil
}
