package tub

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// At returns the record with the given index, using the catalog sidecar
// manifests to open only the chunk that contains it — the random-access
// pattern DonkeyCar's training loader uses on big tubs.
func (t *Tub) At(index int) (StoredRecord, error) {
	m, err := t.readManifest()
	if err != nil {
		return StoredRecord{}, err
	}
	if index < 0 || index >= m.CurrentIndex {
		return StoredRecord{}, fmt.Errorf("tub: index %d out of range [0,%d)", index, m.CurrentIndex)
	}
	cats, err := t.Catalogs()
	if err != nil {
		return StoredRecord{}, err
	}
	for _, cat := range cats {
		if index < cat.StartIndex || index >= cat.StartIndex+cat.Count {
			continue
		}
		f, err := os.Open(filepath.Join(t.Dir, cat.Path))
		if err != nil {
			return StoredRecord{}, fmt.Errorf("tub: open catalog: %w", err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		line := 0
		for sc.Scan() {
			if cat.StartIndex+line == index {
				var rec StoredRecord
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					return StoredRecord{}, fmt.Errorf("tub: %s line %d: %w", cat.Path, line, err)
				}
				return rec, nil
			}
			line++
		}
		if err := sc.Err(); err != nil {
			return StoredRecord{}, err
		}
		break
	}
	return StoredRecord{}, fmt.Errorf("tub: record %d not found in any catalog", index)
}

// Iter streams live records one at a time to fn in index order, stopping
// early if fn returns false. It never loads the whole dataset into memory,
// which matters for the paper's 50k-record tubs.
func (t *Tub) Iter(fn func(StoredRecord) bool) error {
	m, err := t.readManifest()
	if err != nil {
		return err
	}
	deleted := make(map[int]bool, len(m.DeletedIndexes))
	for _, i := range m.DeletedIndexes {
		deleted[i] = true
	}
	for _, cat := range m.CatalogPaths {
		f, err := os.Open(filepath.Join(t.Dir, cat))
		if err != nil {
			return fmt.Errorf("tub: open catalog %s: %w", cat, err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			var rec StoredRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				f.Close()
				return fmt.Errorf("tub: %s: %w", cat, err)
			}
			if deleted[rec.Index] {
				continue
			}
			if !fn(rec) {
				f.Close()
				return nil
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return fmt.Errorf("tub: scan %s: %w", cat, err)
		}
	}
	return nil
}
