package tub

import (
	"fmt"
	"math"
)

// This file implements the tubclean utility from the paper: "users watch
// the video, select the parts that need to be deleted, which the program
// then correlates to invalid data records that need to be cleaned up."
// The interactive video review is modeled as a segment-selection API plus
// automatic heuristics that propose the segments a student would spot.

// Segment is a half-open index range [Start, End) of records to delete.
type Segment struct {
	Start, End int
}

// Len returns the number of records in the segment.
func (s Segment) Len() int {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// CleanSegments marks every record in the given segments as deleted, the
// way the tubclean UI commits a student's selections.
func (t *Tub) CleanSegments(segs ...Segment) (marked int, err error) {
	var idx []int
	total, err := t.TotalCount()
	if err != nil {
		return 0, err
	}
	for _, s := range segs {
		if s.Start < 0 || s.End > total || s.End < s.Start {
			return 0, fmt.Errorf("tub: segment [%d,%d) out of range [0,%d)", s.Start, s.End, total)
		}
		for i := s.Start; i < s.End; i++ {
			idx = append(idx, i)
		}
	}
	if err := t.MarkDeleted(idx...); err != nil {
		return 0, err
	}
	return len(idx), nil
}

// ReviewFunc inspects one record during a review pass and reports whether
// it should be deleted.
type ReviewFunc func(rec StoredRecord) bool

// Review plays back all records in order (the "video") and marks the ones
// the callback rejects. It returns how many records were marked.
func (t *Tub) Review(fn ReviewFunc) (int, error) {
	recs, err := t.ReadAllIncludingDeleted()
	if err != nil {
		return 0, err
	}
	var idx []int
	for _, r := range recs {
		if fn(r) {
			idx = append(idx, r.Index)
		}
	}
	if err := t.MarkDeleted(idx...); err != nil {
		return 0, err
	}
	return len(idx), nil
}

// CleanerConfig tunes the automatic bad-segment detector.
type CleanerConfig struct {
	// JerkThreshold flags steering changes per record larger than this.
	JerkThreshold float64
	// SaturationRun flags runs of at least this many records at |angle| >=
	// SaturationLevel, which in practice is a spin or a crash recovery.
	SaturationRun   int
	SaturationLevel float64
	// Pad widens each detected segment by this many records on both sides,
	// as a human reviewer deletes a little extra around an incident.
	Pad int
}

// DefaultCleanerConfig matches how practiced students clean driving data.
func DefaultCleanerConfig() CleanerConfig {
	return CleanerConfig{
		JerkThreshold:   0.45,
		SaturationRun:   6,
		SaturationLevel: 0.65,
		Pad:             3,
	}
}

// DetectBadSegments proposes segments to delete using the heuristics in
// cfg. It does not modify the tub; pass the result to CleanSegments.
func (t *Tub) DetectBadSegments(cfg CleanerConfig) ([]Segment, error) {
	recs, err := t.ReadAllIncludingDeleted()
	if err != nil {
		return nil, err
	}
	n := len(recs)
	bad := make([]bool, n)

	// Heuristic 1: steering jerk.
	for i := 1; i < n; i++ {
		if math.Abs(recs[i].Angle-recs[i-1].Angle) > cfg.JerkThreshold {
			bad[i] = true
			bad[i-1] = true
		}
	}
	// Heuristic 2: sustained steering saturation.
	run := 0
	for i := 0; i < n; i++ {
		if math.Abs(recs[i].Angle) >= cfg.SaturationLevel {
			run++
		} else {
			run = 0
		}
		if run >= cfg.SaturationRun {
			for j := i - run + 1; j <= i; j++ {
				bad[j] = true
			}
		}
	}
	// Pad and merge into segments. Indexes here are positions in recs; since
	// recs is in index order and includes deleted records, positions equal
	// record indexes for tubs written by this package.
	padded := make([]bool, n)
	for i := 0; i < n; i++ {
		if !bad[i] {
			continue
		}
		lo := i - cfg.Pad
		hi := i + cfg.Pad
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			padded[j] = true
		}
	}
	var segs []Segment
	for i := 0; i < n; {
		if !padded[i] {
			i++
			continue
		}
		j := i
		for j < n && padded[j] {
			j++
		}
		segs = append(segs, Segment{Start: recs[i].Index, End: recs[j-1].Index + 1})
		i = j
	}
	return segs, nil
}

// AutoClean runs DetectBadSegments and commits the result, returning the
// number of records marked. This is the "one-click" cleaning pathway used
// by the quickstart example.
func (t *Tub) AutoClean(cfg CleanerConfig) (int, error) {
	segs, err := t.DetectBadSegments(cfg)
	if err != nil {
		return 0, err
	}
	return t.CleanSegments(segs...)
}
