package tub

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ReadAll returns all live (non-deleted) records in index order.
func (t *Tub) ReadAll() ([]StoredRecord, error) {
	return t.read(false)
}

// ReadAllIncludingDeleted returns every record, including marked ones.
func (t *Tub) ReadAllIncludingDeleted() ([]StoredRecord, error) {
	return t.read(true)
}

func (t *Tub) read(includeDeleted bool) ([]StoredRecord, error) {
	m, err := t.readManifest()
	if err != nil {
		return nil, err
	}
	deleted := make(map[int]bool, len(m.DeletedIndexes))
	for _, i := range m.DeletedIndexes {
		deleted[i] = true
	}
	var out []StoredRecord
	for _, cat := range m.CatalogPaths {
		f, err := os.Open(filepath.Join(t.Dir, cat))
		if err != nil {
			return nil, fmt.Errorf("tub: open catalog %s: %w", cat, err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			var rec StoredRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				f.Close()
				return nil, fmt.Errorf("tub: %s line %d: %w", cat, lineNo, err)
			}
			if includeDeleted || !deleted[rec.Index] {
				out = append(out, rec)
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, fmt.Errorf("tub: scan %s: %w", cat, err)
		}
		f.Close()
	}
	return out, nil
}

// CatalogInfo describes one catalog chunk, read from its sidecar manifest.
type CatalogInfo struct {
	Path       string
	StartIndex int
	Count      int
}

// Catalogs lists the tub's catalog chunks with their sidecar metadata.
func (t *Tub) Catalogs() ([]CatalogInfo, error) {
	m, err := t.readManifest()
	if err != nil {
		return nil, err
	}
	out := make([]CatalogInfo, 0, len(m.CatalogPaths))
	for _, cat := range m.CatalogPaths {
		data, err := os.ReadFile(filepath.Join(t.Dir, cat+"_manifest"))
		if err != nil {
			return nil, fmt.Errorf("tub: read catalog manifest: %w", err)
		}
		var cm catalogManifest
		if err := json.Unmarshal(data, &cm); err != nil {
			return nil, fmt.Errorf("tub: parse catalog manifest: %w", err)
		}
		out = append(out, CatalogInfo(cm))
	}
	return out, nil
}

// SizeBytes returns the total on-disk footprint of the tub (catalogs,
// manifests and images), used by the transfer benchmarks.
func (t *Tub) SizeBytes() (int64, error) {
	var total int64
	err := filepath.Walk(t.Dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("tub: size: %w", err)
	}
	return total, nil
}
