package eval

import (
	"math"
	"testing"
)

func TestQuantDrift(t *testing.T) {
	ref := [][2]float64{{0.5, -0.25}, {-1, 1}, {0, 0}}
	quant := [][2]float64{{0.5, -0.25}, {-1.02, 1}, {0.005, -0.001}}
	got, err := QuantDrift(ref, quant)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("drift = %g, want 0.02", got)
	}
	if !WithinQuantBudget(got) {
		t.Fatalf("drift %g should pass the %g budget", got, QuantBudget)
	}
	if WithinQuantBudget(QuantBudget + 1e-9) {
		t.Fatal("budget must be a hard upper bound")
	}
	if _, err := QuantDrift(ref, quant[:2]); err == nil {
		t.Fatal("mismatched batch lengths accepted")
	}
	zero, err := QuantDrift(nil, nil)
	if err != nil || zero != 0 {
		t.Fatalf("empty batches: drift=%g err=%v", zero, err)
	}
}
