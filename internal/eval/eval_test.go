package eval

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/track"
)

func expertRun(t testing.TB, ticks int) (sim.SessionResult, *track.Track) {
	t.Helper()
	trk, err := track.DefaultOval()
	if err != nil {
		t.Fatal(err)
	}
	car, err := sim.NewCar(sim.DefaultCarConfig())
	if err != nil {
		t.Fatal(err)
	}
	cam, err := sim.NewCamera(sim.SmallCameraConfig(), trk)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: ticks, OffTrackMargin: 0.1, ResetOnCrash: true},
		car, cam, sim.NewPurePursuit(trk, car.Cfg))
	if err != nil {
		t.Fatal(err)
	}
	return ses.Run(time.Unix(1_700_000_000, 0)), trk
}

func TestEvaluateExpertRun(t *testing.T) {
	res, trk := expertRun(t, 2500)
	r, err := Evaluate(res, trk, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Laps != res.Laps {
		t.Errorf("laps %d != session %d", r.Laps, res.Laps)
	}
	if r.Laps < 2 {
		t.Fatalf("expert completed only %d laps", r.Laps)
	}
	if len(r.LapTimes) != r.Laps {
		t.Errorf("%d lap times for %d laps", len(r.LapTimes), r.Laps)
	}
	if r.BestLap <= 0 || r.MeanLap < r.BestLap {
		t.Errorf("lap stats: best %v mean %v", r.BestLap, r.MeanLap)
	}
	if r.MaxLateral > trk.Width/2 {
		t.Errorf("expert max lateral %g beyond lane", r.MaxLateral)
	}
	if r.RMSLateral <= 0 || r.RMSLateral > r.MaxLateral {
		t.Errorf("RMS lateral %g vs max %g", r.RMSLateral, r.MaxLateral)
	}
	if r.MeanSpeed <= 0 || r.MaxSpeed < r.MeanSpeed {
		t.Errorf("speed stats: mean %g max %g", r.MeanSpeed, r.MaxSpeed)
	}
	if r.SpeedConsistency < 0 || r.SpeedConsistency > 1 {
		t.Errorf("speed consistency %g out of plausible range", r.SpeedConsistency)
	}
	if r.ErrorsPerLap != 0 {
		t.Errorf("expert errors/lap %g", r.ErrorsPerLap)
	}
}

func TestEvaluateValidation(t *testing.T) {
	res, trk := expertRun(t, 50)
	if _, err := Evaluate(res, nil, 20); err == nil {
		t.Error("nil track accepted")
	}
	if _, err := Evaluate(res, trk, 0); err == nil {
		t.Error("zero hz accepted")
	}
	empty, err := Evaluate(sim.SessionResult{}, trk, 20)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Records != 0 || empty.MeanSpeed != 0 {
		t.Errorf("empty run report %+v", empty)
	}
}

func TestErrorsPerLapEdgeCases(t *testing.T) {
	_, trk := expertRun(t, 10)
	r, err := Evaluate(sim.SessionResult{Crashes: 3}, trk, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.ErrorsPerLap, 1) {
		t.Errorf("crashes without laps: %g", r.ErrorsPerLap)
	}
}

func TestFrontierPrefersFastClean(t *testing.T) {
	fast := Report{MeanSpeed: 2.0, Crashes: 0}
	slow := Report{MeanSpeed: 1.0, Crashes: 0}
	fastCrashy := Report{MeanSpeed: 2.0, Crashes: 4}
	if fast.Frontier() <= slow.Frontier() {
		t.Error("faster clean run should score higher")
	}
	if fastCrashy.Frontier() >= slow.Frontier() {
		t.Error("crashy run should score lower than clean slower run")
	}
}

func TestBest(t *testing.T) {
	rows := []Comparison{
		{Name: "linear", Report: Report{MeanSpeed: 1.2, Crashes: 1}},
		{Name: "inferred", Report: Report{MeanSpeed: 1.8, Crashes: 0}},
		{Name: "rnn", Report: Report{MeanSpeed: 1.1, Crashes: 0}},
	}
	if got := Best(rows); got != 1 {
		t.Errorf("Best = %d, want 1 (inferred)", got)
	}
	if got := Best(nil); got != -1 {
		t.Errorf("Best(nil) = %d", got)
	}
}

func TestLapTimesRoughlyConsistentForExpert(t *testing.T) {
	res, trk := expertRun(t, 3500)
	r, err := Evaluate(res, trk, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LapTimes) < 2 {
		t.Skip("need 2+ laps")
	}
	// Steady-state expert laps (after the first) should agree within 25%.
	for i := 2; i < len(r.LapTimes); i++ {
		a, b := r.LapTimes[i-1].Seconds(), r.LapTimes[i].Seconds()
		if math.Abs(a-b)/math.Max(a, b) > 0.25 {
			t.Errorf("laps %d and %d differ too much: %gs vs %gs", i-1, i, a, b)
		}
	}
}
