// Package eval computes the model-evaluation metrics the paper tells
// students to measure when they "drive [cars] around the track measuring
// qualities of interest (speed, number of errors, etc.)": lap times, lap
// counts, crash/off-track error rates, lateral tracking error, and the
// speed-consistency metric of the companion poster "Road To Reliability:
// Optimizing Self-Driving Consistency With Real-Time Speed Data".
package eval

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/track"
)

// Report is the per-run evaluation summary.
type Report struct {
	Laps       int
	Crashes    int
	Records    int
	MeanSpeed  float64 // m/s over moving ticks
	MaxSpeed   float64
	MaxLateral float64 // worst absolute offset from centerline, meters
	RMSLateral float64 // root-mean-square lateral offset
	LapTimes   []time.Duration
	BestLap    time.Duration
	MeanLap    time.Duration
	// SpeedConsistency is the coefficient of variation of per-tick speed
	// over moving ticks (lower = steadier driving; the poster's metric).
	SpeedConsistency float64
	// ErrorsPerLap is crashes divided by completed laps (Inf with zero laps
	// and nonzero crashes, 0 when both are zero). encoding/json rejects
	// IEEE infinities, so Report's JSON encoding serializes the Inf case as
	// the string "+Inf"; see MarshalJSON.
	ErrorsPerLap float64
}

// infSentinel is how an infinite ErrorsPerLap appears in JSON, where IEEE
// infinities are unrepresentable.
const infSentinel = "+Inf"

// reportAlias breaks the MarshalJSON recursion: same fields, no methods.
type reportAlias Report

// MarshalJSON encodes the report with an infinite ErrorsPerLap (a
// crashed-out run with zero completed laps) rendered as the string "+Inf"
// instead of failing with json.UnsupportedValueError.
func (r Report) MarshalJSON() ([]byte, error) {
	out := struct {
		reportAlias
		ErrorsPerLap any `json:",omitempty"`
	}{reportAlias: reportAlias(r)}
	if math.IsInf(r.ErrorsPerLap, 0) {
		out.ErrorsPerLap = infSentinel
	} else {
		out.ErrorsPerLap = r.ErrorsPerLap
	}
	return json.Marshal(out)
}

// UnmarshalJSON accepts both the numeric encoding and the "+Inf" sentinel.
func (r *Report) UnmarshalJSON(data []byte) error {
	var in struct {
		reportAlias
		ErrorsPerLap json.RawMessage
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*r = Report(in.reportAlias)
	switch {
	case len(in.ErrorsPerLap) == 0 || string(in.ErrorsPerLap) == "null":
		r.ErrorsPerLap = 0
	case in.ErrorsPerLap[0] == '"':
		var s string
		if err := json.Unmarshal(in.ErrorsPerLap, &s); err != nil {
			return err
		}
		if s != infSentinel && s != "Inf" && s != "-Inf" {
			return fmt.Errorf("eval: invalid ErrorsPerLap sentinel %q", s)
		}
		if s == "-Inf" {
			r.ErrorsPerLap = math.Inf(-1)
		} else {
			r.ErrorsPerLap = math.Inf(1)
		}
	default:
		if err := json.Unmarshal(in.ErrorsPerLap, &r.ErrorsPerLap); err != nil {
			return err
		}
	}
	return nil
}

// Evaluate analyzes a completed session on its track.
func Evaluate(res sim.SessionResult, trk *track.Track, hz float64) (Report, error) {
	if trk == nil {
		return Report{}, fmt.Errorf("eval: nil track")
	}
	if hz <= 0 {
		return Report{}, fmt.Errorf("eval: hz must be positive")
	}
	r := Report{Laps: res.Laps, Crashes: res.Crashes, Records: len(res.Records)}
	switch {
	case r.Laps > 0:
		r.ErrorsPerLap = float64(r.Crashes) / float64(r.Laps)
	case r.Crashes > 0:
		r.ErrorsPerLap = math.Inf(1)
	}
	if len(res.Records) == 0 {
		return r, nil
	}

	cl := trk.Centerline
	lapLen := cl.Length()
	dt := time.Duration(float64(time.Second) / hz)

	var latSq, speedSum, speedSq float64
	var moving int
	progress := 0.0
	prevS := cl.Project(track.Point{X: res.Records[0].State.X, Y: res.Records[0].State.Y}).S
	lapStart := res.Records[0].Timestamp

	for _, rec := range res.Records {
		if a := math.Abs(rec.Lateral); a > r.MaxLateral {
			r.MaxLateral = a
		}
		latSq += rec.Lateral * rec.Lateral
		v := rec.State.Speed
		if v > r.MaxSpeed {
			r.MaxSpeed = v
		}
		if v > 0.05 {
			speedSum += v
			speedSq += v * v
			moving++
		}
		proj := cl.Project(track.Point{X: rec.State.X, Y: rec.State.Y})
		ds := proj.S - prevS
		if ds > lapLen/2 {
			ds -= lapLen
		} else if ds < -lapLen/2 {
			ds += lapLen
		}
		progress += ds
		prevS = proj.S
		for progress >= lapLen {
			progress -= lapLen
			lapEnd := rec.Timestamp.Add(dt)
			r.LapTimes = append(r.LapTimes, lapEnd.Sub(lapStart))
			lapStart = lapEnd
		}
	}

	r.RMSLateral = math.Sqrt(latSq / float64(len(res.Records)))
	if moving > 0 {
		mean := speedSum / float64(moving)
		r.MeanSpeed = mean
		variance := speedSq/float64(moving) - mean*mean
		if variance < 0 {
			variance = 0
		}
		if mean > 0 {
			r.SpeedConsistency = math.Sqrt(variance) / mean
		}
	}
	if len(r.LapTimes) > 0 {
		best := r.LapTimes[0]
		var sum time.Duration
		for _, lt := range r.LapTimes {
			if lt < best {
				best = lt
			}
			sum += lt
		}
		r.BestLap = best
		r.MeanLap = sum / time.Duration(len(r.LapTimes))
	}
	return r, nil
}

// Frontier scores a pilot on the paper's speed-vs-accuracy trade-off
// ("the inferred model was best because it gave the car the ability to
// speed fast, while still being accurate"): mean speed discounted by
// errors. Higher is better.
func (r Report) Frontier() float64 {
	return r.MeanSpeed / (1 + float64(r.Crashes))
}

// Comparison holds one pilot's evaluation row for the six-model table.
type Comparison struct {
	Name       string
	TrainLoss  float64
	ValLoss    float64
	ParamCount int
	Report     Report
}

// Best returns the index of the comparison with the highest frontier score
// (-1 for an empty slice).
func Best(rows []Comparison) int {
	best, bi := math.Inf(-1), -1
	for i, r := range rows {
		if s := r.Report.Frontier(); s > best {
			best, bi = s, i
		}
	}
	return bi
}
