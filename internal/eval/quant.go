package eval

import "fmt"

// QuantBudget is the accuracy budget for quantized inference: the worst
// absolute drift, in control-output units, that an int8 path may show
// against the float64 reference before it is considered broken. Steering
// angle and throttle both live in [-1, 1], so 0.05 is 2.5% of the control
// range — far below the actuation noise the simulator already models, and
// comfortably above the drift the per-channel symmetric quantizer actually
// produces (about 0.01 on the E14 geometry). The kernel cross-checks in
// internal/nn and the E14 benchmark guard both enforce this bound.
const QuantBudget = 0.05

// QuantDrift returns the worst absolute difference between a float-
// precision batch of control outputs and its quantized counterpart. The
// batches must pair up element for element.
func QuantDrift(ref, quant [][2]float64) (float64, error) {
	if len(ref) != len(quant) {
		return 0, fmt.Errorf("eval: drift over mismatched batches (%d vs %d outputs)", len(ref), len(quant))
	}
	var worst float64
	for i := range ref {
		for c := 0; c < 2; c++ {
			d := ref[i][c] - quant[i][c]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// WithinQuantBudget reports whether a measured drift passes QuantBudget.
func WithinQuantBudget(drift float64) bool { return drift <= QuantBudget }
