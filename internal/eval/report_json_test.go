package eval

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// Regression: a zero-lap crashy session produces ErrorsPerLap = +Inf,
// which encoding/json refuses to serialize as a float. Report must encode
// the infinity as the "+Inf" sentinel string and decode it back.
func TestReportJSONSurvivesInfiniteErrorsPerLap(t *testing.T) {
	_, trk := expertRun(t, 10)
	r, err := Evaluate(sim.SessionResult{Crashes: 3}, trk, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.ErrorsPerLap, 1) {
		t.Fatalf("precondition: ErrorsPerLap = %g, want +Inf", r.ErrorsPerLap)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal with infinite ErrorsPerLap: %v", err)
	}
	if !strings.Contains(string(data), `"ErrorsPerLap":"+Inf"`) {
		t.Errorf("infinity not encoded as sentinel: %s", data)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.ErrorsPerLap, 1) {
		t.Errorf("round trip lost the infinity: %g", back.ErrorsPerLap)
	}
	back.ErrorsPerLap = r.ErrorsPerLap
	if back.Crashes != r.Crashes || back.Laps != r.Laps {
		t.Errorf("round trip mangled the report: got %+v, want %+v", back, r)
	}
}

func TestReportJSONFiniteValuesStayNumeric(t *testing.T) {
	r := Report{Laps: 4, Crashes: 2, ErrorsPerLap: 0.5}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"ErrorsPerLap":0.5`) {
		t.Errorf("finite value not encoded as a number: %s", data)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ErrorsPerLap != 0.5 {
		t.Errorf("round trip: ErrorsPerLap = %g, want 0.5", back.ErrorsPerLap)
	}
}

func TestReportJSONRejectsGarbageSentinel(t *testing.T) {
	var r Report
	if err := json.Unmarshal([]byte(`{"ErrorsPerLap":"lots"}`), &r); err == nil {
		t.Error("garbage sentinel accepted")
	}
	if err := json.Unmarshal([]byte(`{"ErrorsPerLap":"-Inf"}`), &r); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.ErrorsPerLap, -1) {
		t.Errorf("-Inf sentinel decoded to %g", r.ErrorsPerLap)
	}
}
