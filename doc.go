// Package repro is AutoLearn-Go, a from-scratch Go reproduction of
// "AutoLearn: Learning in the Edge to Cloud Continuum" (SC-W 2023): the
// DonkeyCar-style driving stack (simulator, tub data format, six autopilot
// models on a from-scratch neural-network library, vehicle parts loop),
// the Chameleon/CHI@Edge testbed substrates (GPU inventory, advance
// reservations, BYOD edge devices, object store, network emulation), the
// Trovi artifact hub, and the orchestration that ties them into the
// paper's collect → clean → train → evaluate learning loop.
//
// The library lives under internal/; see README.md for the package map,
// DESIGN.md for the system inventory, and bench_test.go in this directory
// for the per-figure/per-experiment reproduction harness.
package repro
