package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesSVGAndCSV(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "oval.svg")
	csv := filepath.Join(dir, "center.csv")
	if err := run("default-oval", svg, csv); err != nil {
		t.Fatal(err)
	}
	svgData, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svgData), "<svg") {
		t.Error("svg output missing root element")
	}
	if !strings.Contains(string(svgData), "polygon") {
		t.Error("svg has no polygons")
	}
	csvData, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	if lines[0] != "s,x,y,heading,curvature" {
		t.Errorf("csv header %q", lines[0])
	}
	if len(lines) < 100 {
		t.Errorf("csv has only %d lines", len(lines))
	}
}

func TestRunUnknownTrack(t *testing.T) {
	if err := run("m25", "", ""); err == nil {
		t.Error("unknown track accepted")
	}
}

func TestRunNoOutputsIsFine(t *testing.T) {
	if err := run("waveshare", "", ""); err != nil {
		t.Fatal(err)
	}
}
