// Command trackgen renders a stock track's geometry: either an SVG (the
// tape lines as students would lay them out, Fig. 3) or a CSV of the
// centerline for external tools.
//
// Usage:
//
//	trackgen -track default-oval -svg oval.svg
//	trackgen -track waveshare -csv center.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/track"
)

func main() {
	name := flag.String("track", "default-oval", "track name")
	svgOut := flag.String("svg", "", "write an SVG rendering to this file")
	csvOut := flag.String("csv", "", "write the centerline as CSV to this file")
	flag.Parse()
	if err := run(*name, *svgOut, *csvOut); err != nil {
		fmt.Fprintln(os.Stderr, "trackgen:", err)
		os.Exit(1)
	}
}

func run(name, svgOut, csvOut string) error {
	trk, err := track.ByName(name)
	if err != nil {
		return err
	}
	s := trk.Summarize()
	fmt.Printf("%s: inner %.2f m, outer %.2f m, width %.2f m, centerline %.2f m\n",
		s.Name, s.InnerLength, s.OuterLength, s.AvgWidth, s.CenterLen)
	if svgOut != "" {
		if err := writeSVG(trk, svgOut); err != nil {
			return err
		}
		fmt.Println("wrote", svgOut)
	}
	if csvOut != "" {
		if err := writeCSV(trk, csvOut); err != nil {
			return err
		}
		fmt.Println("wrote", csvOut)
	}
	return nil
}

func pathPoints(p *track.Path, step float64) []track.Point {
	var pts []track.Point
	for s := 0.0; s < p.Length(); s += step {
		pts = append(pts, p.PointAt(s))
	}
	return pts
}

func writeSVG(trk *track.Track, file string) error {
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)

	// Bounds with margin.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, pt := range pathPoints(trk.OuterBoundary(), 0.05) {
		minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
		minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
	}
	for _, pt := range pathPoints(trk.InnerBoundary(), 0.05) {
		minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
		minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
	}
	const scale = 120.0 // px per meter
	margin := 0.3
	width := (maxX - minX + 2*margin) * scale
	height := (maxY - minY + 2*margin) * scale
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="#5a5a5f"/>`+"\n")

	poly := func(p *track.Path, stroke string, strokeW float64) {
		fmt.Fprintf(w, `<polygon fill="none" stroke="%s" stroke-width="%.1f" points="`, stroke, strokeW)
		for _, pt := range pathPoints(p, 0.05) {
			// SVG y grows downward; flip.
			fmt.Fprintf(w, "%.1f,%.1f ", (pt.X-minX+margin)*scale, (maxY-pt.Y+margin)*scale)
		}
		fmt.Fprintf(w, `"/>`+"\n")
	}
	poly(trk.InnerBoundary(), "#eb7814", 0.05*scale)
	poly(trk.OuterBoundary(), "#eb7814", 0.05*scale)
	poly(trk.Centerline, "#9a9aa0", 0.01*scale)
	fmt.Fprintln(w, "</svg>")
	return w.Flush()
}

func writeCSV(trk *track.Track, file string) error {
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "s,x,y,heading,curvature")
	cl := trk.Centerline
	for s := 0.0; s < cl.Length(); s += 0.05 {
		pt := cl.PointAt(s)
		fmt.Fprintf(w, "%.3f,%.4f,%.4f,%.4f,%.4f\n", s, pt.X, pt.Y, cl.HeadingAt(s), cl.CurvatureAt(s))
	}
	return w.Flush()
}
