// Command webserve runs the DonkeyCar-style web controller against a live
// simulated car: the drive loop runs locally while a browser (or curl)
// steers over HTTP and watches the camera at /video. Prometheus-format
// runtime metrics are served at /metrics. Ctrl-C shuts down cleanly: the
// HTTP server drains and the drive loop stops at a tick boundary.
//
//	webserve -addr :8887 -track default-oval
//	curl -X POST localhost:8887/drive -d '{"angle":0.2,"throttle":0.5}'
//	curl localhost:8887/state
//	curl localhost:8887/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/netctl"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/track"
	"repro/internal/webctl"
)

func main() {
	addr := flag.String("addr", ":8887", "listen address")
	trackName := flag.String("track", "default-oval", "track name")
	hz := flag.Float64("hz", 20, "drive loop rate")
	scnFile := flag.String("scenario", "", "scenario file to script the netctl pane's fabric (empty = clean stock links)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *trackName, *hz, *scnFile); err != nil {
		fmt.Fprintln(os.Stderr, "webserve:", err)
		os.Exit(1)
	}
}

// app is the assembled simulation + web layer, separated from the
// listener so tests can drive the loop and handlers directly.
type app struct {
	srv    *webctl.Server
	reg    *obs.Registry
	tracer *obs.Tracer
	mux    *http.ServeMux
	loop   func(ctx context.Context)
}

func build(trackName string, hz float64, scnFile string) (*app, error) {
	if hz <= 0 {
		return nil, fmt.Errorf("hz must be positive")
	}
	trk, err := track.ByName(trackName)
	if err != nil {
		return nil, err
	}
	cam, err := sim.NewCamera(sim.DefaultCameraConfig(), trk)
	if err != nil {
		return nil, err
	}
	car, err := sim.NewCar(sim.DefaultCarConfig())
	if err != nil {
		return nil, err
	}
	x, y, h := trk.StartPose(0)
	car.Reset(x, y, h)

	ctl := sim.NewWebController()
	srv, err := webctl.New(ctl, car)
	if err != nil {
		return nil, err
	}
	// Publish the starting pose before the loop exists so /state never
	// falls back to reading the car directly while the loop steps it.
	srv.UpdateState(car.State)

	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	srv.SetObserver(obs.Observer{Tracer: tracer, Metrics: reg})
	reg.Help("webserve_frames_total", "camera frames rendered by the drive loop")
	reg.Help("webserve_loop_hz", "configured drive loop rate")
	reg.Help("webserve_tick_seconds", "wall-clock cost of one physics+render tick")
	reg.Gauge("webserve_loop_hz").Set(hz)
	frames := reg.Counter("webserve_frames_total")
	tickHist := reg.Histogram("webserve_tick_seconds", obs.DefSecondsBuckets)

	// Two render buffers, swapped each tick: once UpdateFrame publishes
	// one, the server owns it until the next publish, so the loop renders
	// into the other instead of allocating a frame per tick.
	front, err := sim.NewFrame(cam.Cfg.Width, cam.Cfg.Height, cam.Cfg.Channels)
	if err != nil {
		return nil, err
	}
	back, err := sim.NewFrame(cam.Cfg.Width, cam.Cfg.Height, cam.Cfg.Channels)
	if err != nil {
		return nil, err
	}

	// The netctl pane: a second dashboard over a live link fabric. With a
	// -scenario the fabric follows the script (the drive loop advances its
	// clock in wall time); without one every shape arrives over REST.
	start := time.Now().UTC()
	fabric := netem.NewNet(1)
	var clk *faults.Clock
	var table *scenario.Table
	var rt *scenario.Runtime
	if scnFile != "" {
		s, err := scenario.Load(scnFile)
		if err != nil {
			return nil, err
		}
		rt, err = scenario.NewRuntime(s, 1, start)
		if err != nil {
			return nil, err
		}
		clk, table = rt.Clock(), rt.Table()
	} else {
		var names []string
		for _, l := range netem.Stock() {
			names = append(names, l.Name)
		}
		clk, table = faults.NewClock(start), scenario.NewLinkTable(names...)
	}
	nsrv, err := netctl.New(netctl.Config{
		Table: table, Net: fabric, Now: clk.Now, Links: netem.Stock(), Runtime: rt,
	})
	if err != nil {
		return nil, err
	}
	nsrv.SetObserver(obs.Observer{Metrics: reg})
	if rt != nil {
		rt.SetEventHook(nsrv.PublishEvent)
		rt.Attach(fabric)
		rt.Start(obs.Observer{Tracer: tracer, Metrics: reg})
	} else {
		fabric.SetShaper(table, clk.Now)
	}

	// Drive loop: controller commands move the physics; frame and state
	// snapshots refresh /video and /state.
	loop := func(ctx context.Context) {
		period := time.Duration(float64(time.Second) / hz)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			t0 := time.Now()
			steering, throttle := ctl.Drive(car.State)
			car.Step(steering, throttle, 1/hz)
			cam.RenderInto(car.State, back)
			srv.UpdateFrame(back)
			srv.UpdateState(car.State)
			front, back = back, front
			frames.Inc()
			tickHist.ObserveDuration(time.Since(t0))
			clk.Advance(period)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/netctl/", http.StripPrefix("/netctl", nsrv))
	mux.Handle("/metrics", obs.Handler(reg))
	mux.Handle("/debug/obs", obs.DebugHandler(obs.Observer{Tracer: tracer, Metrics: reg}))
	return &app{srv: srv, reg: reg, tracer: tracer, mux: mux, loop: loop}, nil
}

// run serves until ctx is canceled, then shuts the HTTP server down
// gracefully and stops the drive loop.
func run(ctx context.Context, addr, trackName string, hz float64, scnFile string) error {
	a, err := build(trackName, hz, scnFile)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go a.loop(ctx)

	hs := &http.Server{Handler: a.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("web controller on %s (track %s); POST /drive, GET /state, GET /video, GET /metrics, GET /debug/obs, netctl pane at /netctl/",
		ln.Addr(), trackName)
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	case err := <-errc:
		return err
	}
}
