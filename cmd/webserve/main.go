// Command webserve runs the DonkeyCar-style web controller against a live
// simulated car: the drive loop runs locally while a browser (or curl)
// steers over HTTP and watches the camera at /video.
//
//	webserve -addr :8887 -track default-oval
//	curl -X POST localhost:8887/drive -d '{"angle":0.2,"throttle":0.5}'
//	curl localhost:8887/state
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/sim"
	"repro/internal/track"
	"repro/internal/webctl"
)

func main() {
	addr := flag.String("addr", ":8887", "listen address")
	trackName := flag.String("track", "default-oval", "track name")
	hz := flag.Float64("hz", 20, "drive loop rate")
	flag.Parse()
	if err := run(*addr, *trackName, *hz); err != nil {
		fmt.Fprintln(os.Stderr, "webserve:", err)
		os.Exit(1)
	}
}

func run(addr, trackName string, hz float64) error {
	trk, err := track.ByName(trackName)
	if err != nil {
		return err
	}
	cam, err := sim.NewCamera(sim.DefaultCameraConfig(), trk)
	if err != nil {
		return err
	}
	car, err := sim.NewCar(sim.DefaultCarConfig())
	if err != nil {
		return err
	}
	x, y, h := trk.StartPose(0)
	car.Reset(x, y, h)

	ctl := sim.NewWebController()
	srv, err := webctl.New(ctl, car)
	if err != nil {
		return err
	}

	// Drive loop: controller commands move the physics; frames refresh the
	// /video endpoint.
	go func() {
		period := time.Duration(float64(time.Second) / hz)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for range ticker.C {
			steering, throttle := ctl.Drive(car.State)
			car.Step(steering, throttle, 1/hz)
			srv.UpdateFrame(cam.Render(car.State))
		}
	}()

	log.Printf("web controller on %s (track %s); POST /drive, GET /state, GET /video", addr, trk.Name)
	return http.ListenAndServe(addr, srv)
}
