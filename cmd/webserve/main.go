// Command webserve runs the DonkeyCar-style web controller against a live
// simulated car: the drive loop runs locally while a browser (or curl)
// steers over HTTP and watches the camera at /video. Prometheus-format
// runtime metrics are served at /metrics.
//
//	webserve -addr :8887 -track default-oval
//	curl -X POST localhost:8887/drive -d '{"angle":0.2,"throttle":0.5}'
//	curl localhost:8887/state
//	curl localhost:8887/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/track"
	"repro/internal/webctl"
)

func main() {
	addr := flag.String("addr", ":8887", "listen address")
	trackName := flag.String("track", "default-oval", "track name")
	hz := flag.Float64("hz", 20, "drive loop rate")
	flag.Parse()
	if err := run(*addr, *trackName, *hz); err != nil {
		fmt.Fprintln(os.Stderr, "webserve:", err)
		os.Exit(1)
	}
}

func run(addr, trackName string, hz float64) error {
	trk, err := track.ByName(trackName)
	if err != nil {
		return err
	}
	cam, err := sim.NewCamera(sim.DefaultCameraConfig(), trk)
	if err != nil {
		return err
	}
	car, err := sim.NewCar(sim.DefaultCarConfig())
	if err != nil {
		return err
	}
	x, y, h := trk.StartPose(0)
	car.Reset(x, y, h)

	ctl := sim.NewWebController()
	srv, err := webctl.New(ctl, car)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	reg.Help("webserve_frames_total", "camera frames rendered by the drive loop")
	reg.Help("webserve_loop_hz", "configured drive loop rate")
	reg.Help("webserve_tick_seconds", "wall-clock cost of one physics+render tick")
	reg.Gauge("webserve_loop_hz").Set(hz)
	frames := reg.Counter("webserve_frames_total")
	tickHist := reg.Histogram("webserve_tick_seconds", obs.DefSecondsBuckets)

	// Drive loop: controller commands move the physics; frames refresh the
	// /video endpoint.
	go func() {
		period := time.Duration(float64(time.Second) / hz)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for range ticker.C {
			t0 := time.Now()
			steering, throttle := ctl.Drive(car.State)
			car.Step(steering, throttle, 1/hz)
			srv.UpdateFrame(cam.Render(car.State))
			frames.Inc()
			tickHist.ObserveDuration(time.Since(t0))
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/metrics", obs.Handler(reg))
	log.Printf("web controller on %s (track %s); POST /drive, GET /state, GET /video, GET /metrics", addr, trk.Name)
	return http.ListenAndServe(addr, mux)
}
