package main

import (
	"bytes"
	"context"
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startApp builds the webserve app with its drive loop running and
// returns a test HTTP server over its mux.
func startApp(t *testing.T, hz float64) *httptest.Server {
	t.Helper()
	a, err := build("default-oval", hz)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.loop(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	srv := httptest.NewServer(a.mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := build("no-such-track", 20); err == nil {
		t.Error("unknown track accepted")
	}
	if _, err := build("default-oval", 0); err == nil {
		t.Error("zero hz accepted")
	}
}

// TestEndpointsAgainstRunningLoop drives every endpoint while the loop is
// stepping the car — under -race this is what catches unsynchronized
// handler reads of loop-owned state.
func TestEndpointsAgainstRunningLoop(t *testing.T) {
	srv := startApp(t, 200)

	// /drive: floor it.
	resp, err := http.Post(srv.URL+"/drive", "application/json",
		strings.NewReader(`{"angle":0,"throttle":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/drive status %d", resp.StatusCode)
	}

	// /mode: both bounds enforced while the loop runs.
	for body, want := range map[string]int{
		`{"constant_throttle":0.3}`: http.StatusNoContent,
		`{"constant_throttle":-4}`:  http.StatusBadRequest,
	} {
		resp, err := http.Post(srv.URL+"/mode", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("/mode %s: status %d, want %d", body, resp.StatusCode, want)
		}
	}

	// /state: poll concurrently with the loop until the throttle command
	// shows up as motion.
	deadline := time.Now().Add(2 * time.Second)
	var speed float64
	for time.Now().Before(deadline) && speed == 0 {
		resp, err := http.Get(srv.URL + "/state")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/state status %d", resp.StatusCode)
		}
		var st struct {
			Speed float64 `json:"speed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		speed = st.Speed
	}
	if speed <= 0 {
		t.Error("car never moved despite full throttle over /drive")
	}

	// /video: a decodable PNG of the camera's shape once a frame exists.
	deadline = time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/video")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			img, err := png.Decode(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if img.Bounds().Dx() == 0 || img.Bounds().Dy() == 0 {
				t.Errorf("empty video frame %v", img.Bounds())
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("no video frame before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// /metrics: loop series present and advancing.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{"webserve_frames_total", "webserve_loop_hz", "webserve_tick_seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestRunShutsDownOnCancel exercises the graceful-shutdown path main wires
// to SIGINT: cancelation must make run return promptly and cleanly.
func TestRunShutsDownOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, "127.0.0.1:0", "default-oval", 50) }()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v on cancel", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("run did not shut down after cancel")
	}
}
