package main

import (
	"bytes"
	"context"
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startApp builds the webserve app with its drive loop running and
// returns a test HTTP server over its mux.
func startApp(t *testing.T, hz float64) *httptest.Server {
	t.Helper()
	a, err := build("default-oval", hz, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.loop(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	srv := httptest.NewServer(a.mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := build("no-such-track", 20, ""); err == nil {
		t.Error("unknown track accepted")
	}
	if _, err := build("default-oval", 0, ""); err == nil {
		t.Error("zero hz accepted")
	}
}

// TestEndpointsAgainstRunningLoop drives every endpoint while the loop is
// stepping the car — under -race this is what catches unsynchronized
// handler reads of loop-owned state.
func TestEndpointsAgainstRunningLoop(t *testing.T) {
	srv := startApp(t, 200)

	// /drive: floor it.
	resp, err := http.Post(srv.URL+"/drive", "application/json",
		strings.NewReader(`{"angle":0,"throttle":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/drive status %d", resp.StatusCode)
	}

	// /mode: both bounds enforced while the loop runs.
	for body, want := range map[string]int{
		`{"constant_throttle":0.3}`: http.StatusNoContent,
		`{"constant_throttle":-4}`:  http.StatusBadRequest,
	} {
		resp, err := http.Post(srv.URL+"/mode", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("/mode %s: status %d, want %d", body, resp.StatusCode, want)
		}
	}

	// /state: poll concurrently with the loop until the throttle command
	// shows up as motion.
	deadline := time.Now().Add(2 * time.Second)
	var speed float64
	for time.Now().Before(deadline) && speed == 0 {
		resp, err := http.Get(srv.URL + "/state")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/state status %d", resp.StatusCode)
		}
		var st struct {
			Speed float64 `json:"speed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		speed = st.Speed
	}
	if speed <= 0 {
		t.Error("car never moved despite full throttle over /drive")
	}

	// /video: a decodable PNG of the camera's shape once a frame exists.
	deadline = time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/video")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			img, err := png.Decode(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if img.Bounds().Dx() == 0 || img.Bounds().Dy() == 0 {
				t.Errorf("empty video frame %v", img.Bounds())
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("no video frame before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// /metrics: loop series present and advancing.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{"webserve_frames_total", "webserve_loop_hz", "webserve_tick_seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestObservabilityEndpoints pins the telemetry surface: /metrics and
// /debug/obs serve the right content types, are GET-only, and a /drive
// command carrying a trace context shows up on the dashboard.
func TestObservabilityEndpoints(t *testing.T) {
	a, err := build("default-oval", 20, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(a.mux)
	defer srv.Close()

	// A traced drive command: the server must continue the client's trace.
	root := a.tracer.Start("pilot-loop")
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/drive",
		strings.NewReader(`{"angle":0.1,"throttle":0.4}`))
	if err != nil {
		t.Fatal(err)
	}
	root.Context().Inject(req.Header)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/drive status %d", resp.StatusCode)
	}
	root.End()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Content-Type"), buf.String()
	}

	code, ct, body := get("/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics = (%d, %q), want (200, text/plain)", code, ct)
	}
	if !strings.Contains(body, `webctl_commands_total{endpoint="drive"} 1`) {
		t.Errorf("/metrics missing the drive command counter:\n%s", body)
	}
	// The registry is quiescent, so back-to-back scrapes must be identical.
	if _, _, again := get("/metrics"); again != body {
		t.Error("/metrics body changed between identical scrapes")
	}

	code, ct, body = get("/debug/obs")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/html") {
		t.Errorf("/debug/obs = (%d, %q), want (200, text/html)", code, ct)
	}
	for _, want := range []string{"webctl_drive", root.TraceID, "webserve_loop_hz"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/obs missing %q", want)
		}
	}
	code, ct, body = get("/debug/obs?format=json")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/obs?format=json = (%d, %q), want (200, application/json)", code, ct)
	}
	if _, _, again := get("/debug/obs?format=json"); again != body {
		t.Error("/debug/obs JSON changed between identical requests")
	}

	for _, path := range []string{"/metrics", "/debug/obs"} {
		resp, err := http.Post(srv.URL+path, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s status %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestRunShutsDownOnCancel exercises the graceful-shutdown path main wires
// to SIGINT: cancelation must make run return promptly and cleanly.
func TestRunShutsDownOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, "127.0.0.1:0", "default-oval", 50, "") }()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v on cancel", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("run did not shut down after cancel")
	}
}

// TestNetctlPaneMounted checks the second dashboard pane: the netctl
// control plane is reachable under /netctl/ and its link fabric serves
// the stock profiles.
func TestNetctlPaneMounted(t *testing.T) {
	srv := startApp(t, 100)
	resp, err := http.Get(srv.URL + "/netctl/")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "netctl") {
		t.Fatalf("/netctl/ = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/netctl/links")
	if err != nil {
		t.Fatal(err)
	}
	var links []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&links); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(links) != 5 || links[0].Name != "campus-wan" {
		t.Fatalf("netctl links = %+v", links)
	}
	// A live mutation through the pane works end to end.
	resp, err = http.Post(srv.URL+"/netctl/links/shape", "application/json",
		strings.NewReader(`{"link":"campus-wan","bandwidth":"2Mbps"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shape via pane = %d", resp.StatusCode)
	}
}
