// Command autolearn is the module's command-line interface: it drives the
// same pipeline the notebooks wrap — collect, clean, train, evaluate — plus
// utilities for track inspection, BYOD onboarding, and the inference
// placement sweep.
//
// Usage:
//
//	autolearn tracks
//	autolearn collect   -out DIR [-track default-oval] [-ticks 1200] [-driver human] [-seed 1]
//	autolearn clean     -tub DIR
//	autolearn merge     -out DIR SRC1 [SRC2 ...]
//	autolearn train     -tub DIR -out FILE [-model linear] [-gpu V100] [-epochs 5]
//	autolearn evaluate  -model FILE [-track default-oval] [-placement edge] [-ticks 600] [-trace FILE] [-metrics FILE]
//	autolearn pipeline  [-track default-oval] [-model inferred] [-gpu RTX6000] [-faults PROFILE] [-trace FILE] [-metrics FILE]
//	autolearn models    [-track default-oval] [-ticks 1200] [-epochs 8] [-trace FILE] [-metrics FILE]
//	autolearn twin      [-track default-oval] [-ticks 800]
//	autolearn hybrid    [-shrink 8] [-blend 0.4] [-ticks 600]
//	autolearn zero      [-image-mb 800]
//	autolearn placement [-params 150000]
//	autolearn serve     -models name=FILE[,name=FILE...] [-addr :8899] [-max-batch 32] [-batch-window 2ms] [-scenario FILE]
//	autolearn obs       report -trace FILE
//	autolearn scenario  check -file FILE | probe -file FILE [-at 90s] [-link NAME] [-tol 0.25]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pilot"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/track"
	"repro/internal/tub"
)

// obsFlags carries the -trace/-metrics export destinations shared by the
// pipeline, models, and evaluate commands.
type obsFlags struct {
	trace   *string
	metrics *string
}

func addObsFlags(fs *flag.FlagSet) obsFlags {
	return obsFlags{
		trace:   fs.String("trace", "", "write a JSONL span trace to this file"),
		metrics: fs.String("metrics", "", "write Prometheus-format metrics to this file"),
	}
}

// observer returns a live observer when either export was requested, and
// the inert zero observer otherwise.
func (of obsFlags) observer() obs.Observer {
	if *of.trace == "" && *of.metrics == "" {
		return obs.Observer{}
	}
	return obs.NewObserver()
}

// write exports the requested trace and metrics files.
func (of obsFlags) write(o obs.Observer) error {
	if *of.trace != "" {
		f, err := os.Create(*of.trace)
		if err != nil {
			return err
		}
		if err := o.Tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans -> %s\n", len(o.Tracer.Finished()), *of.trace)
	}
	if *of.metrics != "" {
		f, err := os.Create(*of.metrics)
		if err != nil {
			return err
		}
		if err := o.Metrics.WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics: %s\n", *of.metrics)
	}
	return nil
}

var epoch = time.Date(2023, 9, 1, 9, 0, 0, 0, time.UTC)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "tracks":
		err = cmdTracks()
	case "collect":
		err = cmdCollect(os.Args[2:])
	case "clean":
		err = cmdClean(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(os.Args[2:])
	case "pipeline":
		err = cmdPipeline(os.Args[2:])
	case "zero":
		err = cmdZero(os.Args[2:])
	case "placement":
		err = cmdPlacement(os.Args[2:])
	case "models":
		err = cmdModels(os.Args[2:])
	case "twin":
		err = cmdTwin(os.Args[2:])
	case "hybrid":
		err = cmdHybrid(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "fed-train":
		err = cmdFedTrain(os.Args[2:])
	case "obs":
		err = cmdObs(os.Args[2:])
	case "scenario":
		err = cmdScenario(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "autolearn: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "autolearn:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `autolearn <command> [flags]

commands:
  tracks      print the stock track geometries (Fig. 3)
  collect     drive and record a tub dataset
  clean       run tubclean's automatic detector on a tub
  train       train one of the six pilots from a tub
  evaluate    drive a trained model autonomously and report metrics
  pipeline    run the full collect-clean-train-evaluate loop (Fig. 1)
  zero        show the BYOD zero-to-ready timeline
  placement   print the edge/cloud/hybrid latency table
  models      train and race all six pilot architectures
  twin        print the digital-twin divergence table
  hybrid      distill a student and run the hybrid edge-cloud loop
  merge       combine several tubs into one (mix and match)
  serve       run the batched inference service over trained checkpoints
  fed-train   run federated training across a fleet of edge workers:
              -topology star (FedAvg parameter server, default) or
              gossip (decentralized peer-to-peer dissemination with
              -fanout/-peer-k/-anti-entropy/-peer-link knobs)
  obs         observability utilities: obs report -trace FILE summarizes
              a JSONL trace (per-stage timings, tree, critical path)
  scenario    scenario-file utilities: scenario check -file F validates and
              canonicalizes; scenario probe -file F [-at 90s] measures the
              declared links as shaped at that instant

pipeline, models, and evaluate accept -trace FILE (JSONL span trace) and
-metrics FILE (Prometheus text format) to export observability data.
pipeline also accepts -faults PROFILE (lossy-wan, flaky-objstore,
heartbeat-gap, preempt, chaos) to run under deterministic fault injection.
pipeline, fed-train, and serve accept -scenario FILE to run under a
phase-scripted chaos scenario (see scenarios/); the same file plus the
same seed replays byte-identically through any of them.`)
}

func cmdTracks() error {
	for _, name := range []string{"default-oval", "waveshare"} {
		trk, err := track.ByName(name)
		if err != nil {
			return err
		}
		s := trk.Summarize()
		fmt.Printf("%-14s inner %6.1f in  outer %6.1f in  width %5.2f in  centerline %5.2f m\n",
			s.Name, s.InnerLength/track.MetersPerInch, s.OuterLength/track.MetersPerInch,
			s.AvgWidth/track.MetersPerInch, s.CenterLen)
	}
	return nil
}

func sessionOn(trackName string, camCfg sim.CameraConfig, drv func(*track.Track, *sim.Car) sim.Driver,
	ticks int) (sim.SessionResult, *track.Track, error) {
	trk, err := track.ByName(trackName)
	if err != nil {
		return sim.SessionResult{}, nil, err
	}
	cam, err := sim.NewCamera(camCfg, trk)
	if err != nil {
		return sim.SessionResult{}, nil, err
	}
	car, err := sim.NewCar(sim.DefaultCarConfig())
	if err != nil {
		return sim.SessionResult{}, nil, err
	}
	cfg := sim.DefaultSessionConfig()
	cfg.MaxTicks = ticks
	ses, err := sim.NewSession(cfg, car, cam, drv(trk, car))
	if err != nil {
		return sim.SessionResult{}, nil, err
	}
	return ses.Run(epoch), trk, nil
}

func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	out := fs.String("out", "", "tub output directory (required)")
	trackName := fs.String("track", "default-oval", "track name")
	ticks := fs.Int("ticks", 1200, "ticks to drive at 20 Hz")
	driver := fs.String("driver", "human", "driver: human|expert")
	seed := fs.Int64("seed", 1, "human-driver seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("collect: -out is required")
	}
	res, _, err := sessionOn(*trackName, sim.SmallCameraConfig(), func(trk *track.Track, car *sim.Car) sim.Driver {
		pp := sim.NewPurePursuit(trk, car.Cfg)
		if *driver == "expert" {
			return pp
		}
		return sim.NewHumanDriver(pp, *seed, 20)
	}, *ticks)
	if err != nil {
		return err
	}
	t, err := tub.Create(*out)
	if err != nil {
		return err
	}
	w, err := tub.NewWriter(t)
	if err != nil {
		return err
	}
	bad, err := w.WriteSession(res)
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	size, err := t.SizeBytes()
	if err != nil {
		return err
	}
	fmt.Printf("collected %d records (%d look bad) over %d laps, %d crashes; %d bytes in %s\n",
		len(res.Records), len(bad), res.Laps, res.Crashes, size, *out)
	return nil
}

func cmdClean(args []string) error {
	fs := flag.NewFlagSet("clean", flag.ExitOnError)
	dir := fs.String("tub", "", "tub directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("clean: -tub is required")
	}
	t, err := tub.Open(*dir)
	if err != nil {
		return err
	}
	segs, err := t.DetectBadSegments(tub.DefaultCleanerConfig())
	if err != nil {
		return err
	}
	marked, err := t.CleanSegments(segs...)
	if err != nil {
		return err
	}
	live, err := t.Count()
	if err != nil {
		return err
	}
	fmt.Printf("tubclean: %d segments, %d records marked, %d remain\n", len(segs), marked, live)
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dir := fs.String("tub", "", "tub directory (required)")
	out := fs.String("out", "", "checkpoint output file (required)")
	model := fs.String("model", "linear", "pilot kind: linear|categorical|inferred|memory|rnn|3d")
	gpu := fs.String("gpu", "V100", "GPU SKU for the simulated wall-time estimate")
	epochs := fs.Int("epochs", 5, "training epochs")
	fs.Parse(args)
	if *dir == "" || *out == "" {
		return fmt.Errorf("train: -tub and -out are required")
	}
	t, err := tub.Open(*dir)
	if err != nil {
		return err
	}
	camCfg := sim.SmallCameraConfig()
	cfg := pilot.DefaultConfig(pilot.Kind(*model), camCfg.Width, camCfg.Height, camCfg.Channels)
	pl, err := pilot.New(cfg)
	if err != nil {
		return err
	}
	samples, err := pilot.SamplesFromTub(cfg, t)
	if err != nil {
		return err
	}
	tc := nn.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.Logf = func(format string, a ...any) { fmt.Printf("  "+format+"\n", a...) }
	hist, err := pl.Train(samples, tc)
	if err != nil {
		return err
	}
	inst := &testbed.Instance{GPU: testbed.GPUType(*gpu), GPUCount: 1}
	simTime, err := inst.TrainingTime(testbed.TrainingJob{
		Samples: len(samples), ParamCount: pl.ParamCount(), Epochs: len(hist.Epochs), BatchSize: tc.BatchSize,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pl.Save(f); err != nil {
		return err
	}
	fmt.Printf("trained %s (%d params) on %d samples: val loss %.4f; simulated %s time %v; saved %s\n",
		*model, pl.ParamCount(), len(samples), hist.BestValLoss, *gpu, simTime.Round(time.Second), *out)
	return nil
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	modelFile := fs.String("model", "", "checkpoint file (required)")
	trackName := fs.String("track", "default-oval", "track name")
	placement := fs.String("placement", "edge", "inference placement: edge|cloud|hybrid")
	ticks := fs.Int("ticks", 600, "evaluation ticks at 20 Hz")
	quant := fs.String("quant", "", "quantized inference mode: int8 (empty = float64)")
	of := addObsFlags(fs)
	fs.Parse(args)
	if *modelFile == "" {
		return fmt.Errorf("evaluate: -model is required")
	}
	o := of.observer()
	root := o.Tracer.Start("evaluate")
	root.SetAttr("model", *modelFile)
	root.SetAttr("placement", *placement)
	f, err := os.Open(*modelFile)
	if err != nil {
		return err
	}
	pl, err := pilot.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	if *quant != "" {
		if err := pl.EnableQuant(*quant); err != nil {
			return err
		}
		root.SetAttr("quant", *quant)
	}
	net := netem.NewNet(1)
	net.Instrument(o.Metrics)
	pm := core.DefaultPlacementModel(net)
	lat, err := pm.ControlLatency(core.Placement(*placement), pl.ParamCount())
	if err != nil {
		return err
	}
	drv, err := pilot.NewAutoDriver(pl)
	if err != nil {
		return err
	}
	delayed, err := core.NewDelayedDriver(drv, core.DelayTicksFor(lat, 20))
	if err != nil {
		return err
	}
	camCfg := sim.CameraConfig{Width: pl.Cfg.Width, Height: pl.Cfg.Height, Channels: pl.Cfg.Channels,
		HeightAboveGround: 0.12, Pitch: sim.DefaultCameraConfig().Pitch, HFOV: sim.DefaultCameraConfig().HFOV}
	drive := root.Child("drive")
	res, trk, err := sessionOn(*trackName, camCfg, func(*track.Track, *sim.Car) sim.Driver { return delayed }, *ticks)
	if err != nil {
		return err
	}
	if err := drv.Err(); err != nil {
		return err
	}
	drive.SetAttr("ticks", *ticks)
	drive.SetSimDuration("drive", res.Duration)
	drive.End()
	rep, err := eval.Evaluate(res, trk, 20)
	if err != nil {
		return err
	}
	root.SetAttr("laps", rep.Laps)
	root.SetAttr("crashes", rep.Crashes)
	root.SetAttr("mean_speed", rep.MeanSpeed)
	root.SetSimDuration("latency", lat)
	root.End()
	fmt.Printf("placement %s: latency %v (%.1f Hz achievable)\n",
		*placement, lat.Round(time.Microsecond), core.AchievableHz(lat))
	fmt.Printf("laps %d  crashes %d  mean speed %.2f m/s  RMS lateral %.3f m  consistency %.3f\n",
		rep.Laps, rep.Crashes, rep.MeanSpeed, rep.RMSLateral, rep.SpeedConsistency)
	if *quant != "" {
		drift, err := quantDriftOnSession(pl, res)
		if err != nil {
			return err
		}
		verdict := "within"
		if !eval.WithinQuantBudget(drift) {
			verdict = "EXCEEDS"
		}
		fmt.Printf("quant %s: max control drift %.4f vs float64 (%s the %.2f budget)\n",
			*quant, drift, verdict, eval.QuantBudget)
	}
	return of.write(o)
}

// quantDriftOnSession replays frames the quantized pilot just drove on
// through both precisions and reports the worst control-output drift, so
// an `evaluate -quant` run states its accuracy loss on real inputs rather
// than a synthetic probe.
func quantDriftOnSession(pl *pilot.Pilot, res sim.SessionResult) (float64, error) {
	probe, err := pilot.SamplesFromRecords(pl.Cfg, res.Records)
	if err != nil {
		return 0, fmt.Errorf("evaluate: drift probe: %w", err)
	}
	if len(probe) > 32 {
		probe = probe[:32]
	}
	qout, err := pl.InferBatch(probe)
	if err != nil {
		return 0, err
	}
	mode := pl.QuantMode()
	if err := pl.EnableQuant(""); err != nil {
		return 0, err
	}
	fout, err := pl.InferBatch(probe)
	if err != nil {
		return 0, err
	}
	if err := pl.EnableQuant(mode); err != nil {
		return 0, err
	}
	return eval.QuantDrift(fout, qout)
}

func cmdPipeline(args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	trackName := fs.String("track", "default-oval", "track name")
	model := fs.String("model", "inferred", "pilot kind")
	gpu := fs.String("gpu", "RTX6000", "GPU SKU")
	profile := fs.String("faults", "", "fault profile: "+strings.Join(faults.Profiles(), "|")+" (empty = fault-free)")
	scnFile := fs.String("scenario", "", "scenario file scripting faults and link shapes (exclusive with -faults)")
	of := addObsFlags(fs)
	fs.Parse(args)
	if *profile != "" && *scnFile != "" {
		return fmt.Errorf("pipeline: -scenario and -faults are mutually exclusive")
	}

	cfg := core.DefaultConfig()
	cfg.Track = *trackName
	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	o := of.observer()
	m.Instrument(o)
	var rt *scenario.Runtime
	if *scnFile != "" {
		rt, err = loadScenarioRuntime(*scnFile, cfg.Seed)
		if err != nil {
			return err
		}
		rt.Start(o)
		rt.Attach(m.Net)
	}
	student, err := m.Enroll("cli-student", "local")
	if err != nil {
		return err
	}
	work, err := os.MkdirTemp("", "autolearn-pipeline-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	p, err := m.NewPipeline(student, work)
	if err != nil {
		return err
	}
	var plan *faults.Plan
	trainStart := epoch
	if *profile != "" {
		plan, err = faults.NewPlan(*profile, cfg.Seed, epoch)
		if err != nil {
			return err
		}
		plan.Instrument(o.Metrics)
		if err := p.EnableFaults(plan); err != nil {
			return err
		}
		fmt.Printf("== fault profile %q (seed %d)\n", *profile, cfg.Seed)
	}
	if rt != nil {
		plan = rt.Plan()
		if err := p.EnableFaults(plan); err != nil {
			return err
		}
		fmt.Printf("== %s\n", rt.Describe())
	}
	fmt.Println("== phase 1: data collection (simulator path)")
	col, err := p.CollectData(core.Simulator, "drive-1", 1000)
	if err != nil {
		return err
	}
	fmt.Printf("   %d records, %d flagged, %d laps, drive time %v\n", col.Records, col.Bad, col.Laps, col.Drive)
	fmt.Println("== phase 2: tubclean")
	marked, remaining, err := p.CleanData(col.TubDir)
	if err != nil {
		return err
	}
	fmt.Printf("   %d marked, %d remain\n", marked, remaining)
	fmt.Printf("== phase 3: training %s on %s\n", *model, *gpu)
	if plan != nil {
		trainStart = plan.Clock.Now()
	}
	tr, err := p.Train(col.TubDir, pilot.Kind(*model), testbed.GPUType(*gpu),
		nn.TrainConfig{Epochs: 5, BatchSize: 32, ValFrac: 0.15, Seed: 2, ClipGrad: 5}, trainStart)
	if err != nil {
		return err
	}
	fmt.Printf("   node %s, provision %v, rsync %v, simulated GPU time %v, val loss %.4f\n",
		tr.Lease.NodeID, tr.Provision, tr.Transfer.Round(time.Millisecond),
		tr.SimGPUTime.Round(time.Second), tr.History.BestValLoss)
	fmt.Println("== phase 4: evaluation (edge placement)")
	ev, err := p.Evaluate(tr.ModelObject, core.EdgePlacement, core.DefaultPlacementModel(m.Net), 600)
	if err != nil {
		return err
	}
	fmt.Printf("   latency %v, laps %d, crashes %d, mean speed %.2f m/s\n",
		ev.Latency.Round(time.Microsecond), ev.Report.Laps, ev.Report.Crashes, ev.Report.MeanSpeed)
	if plan != nil {
		// Under faults, also exercise the hybrid edge-cloud path: this is
		// where cloud deadline misses fall back to the on-device pilot.
		fmt.Println("== phase 5: hybrid inference under faults")
		hy, err := p.EvaluateHybrid(tr.ModelObject, core.DefaultPlacementModel(m.Net),
			pilot.DefaultDistillConfig(), 0.4, 600)
		if err != nil {
			return err
		}
		fmt.Printf("   student %d params, laps %d, crashes %d, cloud fallbacks %d\n",
			hy.StudentParams, hy.Report.Laps, hy.Report.Crashes, hy.Fallbacks)
		fmt.Printf("== faults: %s\n", plan.Summary())
	}
	if rt != nil {
		// Drain the script so every phase transition lands in the trace.
		rt.Clock().Advance(rt.Scenario().Horizon())
		fmt.Printf("== scenario: %d phase transitions\n", rt.Finish())
	}
	p.EndTrace()
	return of.write(o)
}

func cmdZero(args []string) error {
	fs := flag.NewFlagSet("zero", flag.ExitOnError)
	imageMB := fs.Int64("image-mb", 800, "AutoLearn Docker image size, MB")
	fs.Parse(args)
	m, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}
	res, err := m.Edge.ZeroToReady("donkeycar-1", "cli-student", m.Cfg.ProjectID,
		"autolearn:latest", *imageMB<<20, epoch)
	if err != nil {
		return err
	}
	fmt.Println("zero-to-ready timeline:")
	for _, s := range res.Steps {
		fmt.Printf("  %-16s %v\n", s.Name, s.Duration.Round(time.Second))
	}
	fmt.Printf("  %-16s %v\n", "TOTAL", res.Total.Round(time.Second))
	fmt.Printf("jupyter: ssh tunnel port %d, token %s\n", res.Jupyter.TunnelPort, res.Jupyter.Token)
	return nil
}

func cmdPlacement(args []string) error {
	fs := flag.NewFlagSet("placement", flag.ExitOnError)
	params := fs.Int("params", 150_000, "model parameter count")
	fs.Parse(args)
	net := netem.NewNet(1)
	fmt.Printf("%-12s %-10s %-14s %-12s %s\n", "wan-latency", "placement", "loop-latency", "achievable", "meets 20Hz")
	for _, wan := range []time.Duration{5, 20, 50, 100, 200} {
		lat := wan * time.Millisecond
		pm := core.DefaultPlacementModel(net)
		pm.Link = pm.Link.WithLatency(lat)
		for _, pl := range core.AllPlacements() {
			d, err := pm.ControlLatency(pl, *params)
			if err != nil {
				return err
			}
			fmt.Printf("%-12v %-10s %-14v %-12.1f %v\n",
				lat, pl, d.Round(time.Microsecond), core.AchievableHz(d), core.MeetsDeadline(d, 20))
		}
	}
	return nil
}
