package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/netem"
	"repro/internal/scenario"
)

// cmdScenario groups the scenario-file utilities: `check` validates and
// canonicalizes a file, `probe` measures the declared links as shaped at
// a chosen instant of the scripted run.
func cmdScenario(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("scenario: want a subcommand: check|probe")
	}
	switch args[0] {
	case "check":
		return cmdScenarioCheck(args[1:])
	case "probe":
		return cmdScenarioProbe(args[1:])
	default:
		return fmt.Errorf("scenario: unknown subcommand %q (want check|probe)", args[0])
	}
}

// loadScenarioRuntime parses a scenario file into a runtime anchored at
// the CLI's shared epoch — the same construction every subsystem uses,
// so a file that checks out here replays identically under pipeline,
// fed-train, and serve.
func loadScenarioRuntime(file string, seed int64) (*scenario.Runtime, error) {
	s, err := scenario.Load(file)
	if err != nil {
		return nil, err
	}
	return scenario.NewRuntime(s, seed, epoch)
}

func cmdScenarioCheck(args []string) error {
	fs := flag.NewFlagSet("scenario check", flag.ExitOnError)
	file := fs.String("file", "", "scenario file (required)")
	seed := fs.Int64("seed", 1, "run seed (a seed directive in the file wins)")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("scenario check: -file is required")
	}
	rt, err := loadScenarioRuntime(*file, *seed)
	if err != nil {
		return err
	}
	s := rt.Scenario()
	fmt.Printf("== %s\n", rt.Describe())
	for i, ph := range s.Phases {
		fmt.Printf("   phase %d: %v..%v %-9s %s\n", i+1, ph.Start, ph.End, ph.Kind, ph.Target())
	}
	fmt.Println("== canonical form:")
	fmt.Print(scenario.Format(s))
	return nil
}

func cmdScenarioProbe(args []string) error {
	fs := flag.NewFlagSet("scenario probe", flag.ExitOnError)
	file := fs.String("file", "", "scenario file (required)")
	at := fs.Duration("at", 0, "instant into the scripted run to probe at")
	link := fs.String("link", "", "probe one declared link (empty = all)")
	tol := fs.Float64("tol", 0.25, "relative tolerance for the declared-vs-measured check")
	bytes := fs.Int64("bytes", 0, "payload per bulk transfer (0 = probe default)")
	seed := fs.Int64("seed", 1, "run seed (a seed directive in the file wins)")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("scenario probe: -file is required")
	}
	rt, err := loadScenarioRuntime(*file, *seed)
	if err != nil {
		return err
	}
	net := netem.NewNet(rt.Seed())
	rt.Attach(net)
	rt.Clock().Advance(*at)

	names := rt.Scenario().LinkNames()
	if *link != "" {
		names = []string{*link}
	}
	if len(names) == 0 {
		return fmt.Errorf("scenario probe: %s declares no links", *file)
	}
	var failed int
	for _, name := range names {
		base, _ := netem.ByName(name)
		res, err := net.Probe(base, netem.ProbeConfig{Bytes: *bytes})
		if err != nil {
			failed++
			fmt.Printf("%-16s at %v: PROBE FAILED: %v\n", name, *at, err)
			continue
		}
		verdict := "within tolerance"
		if err := res.Check(*tol); err != nil {
			failed++
			verdict = "OUT OF TOLERANCE: " + err.Error()
		}
		fmt.Printf("%-16s at %v: declared %s/%v rtt, loss %.4f; measured %s/%v rtt, loss %.4f (%d retrans) — %s\n",
			name, *at,
			scenario.FormatBandwidth(res.Declared.Bandwidth), 2*res.Declared.Latency, res.Declared.LossRate,
			scenario.FormatBandwidth(res.MeasuredBandwidth), res.MeasuredRTT.Round(time.Microsecond), res.MeasuredLoss,
			res.Retransmits, verdict)
	}
	if failed > 0 {
		return fmt.Errorf("scenario probe: %d of %d links out of tolerance", failed, len(names))
	}
	return nil
}
