package main

import (
	"testing"
)

func TestCmdTracks(t *testing.T) {
	if err := cmdTracks(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPlacement(t *testing.T) {
	if err := cmdPlacement([]string{"-params", "100000"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdZero(t *testing.T) {
	if err := cmdZero([]string{"-image-mb", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdTwin(t *testing.T) {
	if err := cmdTwin([]string{"-ticks", "120"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCollectRequiresOut(t *testing.T) {
	if err := cmdCollect(nil); err == nil {
		t.Error("missing -out accepted")
	}
}

func TestCmdCleanRequiresTub(t *testing.T) {
	if err := cmdClean(nil); err == nil {
		t.Error("missing -tub accepted")
	}
}

func TestCmdTrainRequiresArgs(t *testing.T) {
	if err := cmdTrain(nil); err == nil {
		t.Error("missing flags accepted")
	}
}

func TestCmdEvaluateRequiresModel(t *testing.T) {
	if err := cmdEvaluate(nil); err == nil {
		t.Error("missing -model accepted")
	}
}

func TestCmdMergeRequiresArgs(t *testing.T) {
	if err := cmdMerge(nil); err == nil {
		t.Error("missing args accepted")
	}
}

func TestCollectCleanTrainEvaluateFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	tubDir := dir + "/tub"
	ckpt := dir + "/model.ckpt"
	if err := cmdCollect([]string{"-out", tubDir, "-ticks", "400"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdClean([]string{"-tub", tubDir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-tub", tubDir, "-out", ckpt, "-epochs", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvaluate([]string{"-model", ckpt, "-ticks", "200"}); err != nil {
		t.Fatal(err)
	}
	// The same checkpoint must evaluate on the int8 path, reporting its
	// drift against float64; an unknown mode is rejected up front.
	if err := cmdEvaluate([]string{"-model", ckpt, "-ticks", "200", "-quant", "int8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvaluate([]string{"-model", ckpt, "-ticks", "200", "-quant", "int4"}); err == nil {
		t.Fatal("evaluate accepted unsupported quantization mode")
	}
}
