package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

// cmdObs dispatches the observability subcommands; "report" summarizes a
// JSONL trace file into per-stage timings and the critical path, for CI
// and post-mortems.
func cmdObs(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("obs: usage: autolearn obs report -trace FILE")
	}
	switch args[0] {
	case "report":
		return cmdObsReport(args[1:])
	default:
		return fmt.Errorf("obs: unknown subcommand %q (want report)", args[0])
	}
}

func cmdObsReport(args []string) error {
	fs := flag.NewFlagSet("obs report", flag.ExitOnError)
	trace := fs.String("trace", "", "JSONL trace file (required; written by -trace on pipeline/fed-train)")
	fs.Parse(args)
	if *trace == "" {
		return fmt.Errorf("obs report: -trace is required")
	}
	f, err := os.Open(*trace)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadTraceJSONL(f)
	if err != nil {
		return fmt.Errorf("obs report: %s: %w", *trace, err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("obs report: %s holds no spans", *trace)
	}
	return obs.WriteTraceReport(os.Stdout, recs)
}
