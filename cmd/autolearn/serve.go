package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netctl"
	"repro/internal/netem"
	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/serve"
)

// modelSpec is one -models entry: a checkpoint file served under a name.
type modelSpec struct {
	name   string // registry name clients put in the request body
	file   string // checkpoint path on disk, re-read on every poll
	object string // object name inside the models container
}

// parseModelSpecs splits "name=file,name2=file2" (the name defaults to the
// file's base name without extension).
func parseModelSpecs(s string) ([]modelSpec, error) {
	if s == "" {
		return nil, fmt.Errorf("serve: -models is required (name=checkpoint[,name=checkpoint...])")
	}
	var specs []modelSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec := modelSpec{file: part}
		if i := strings.IndexByte(part, '='); i >= 0 {
			spec.name, spec.file = part[:i], part[i+1:]
		}
		if spec.file == "" {
			return nil, fmt.Errorf("serve: empty checkpoint path in %q", part)
		}
		if spec.name == "" {
			base := filepath.Base(spec.file)
			spec.name = strings.TrimSuffix(base, filepath.Ext(base))
		}
		if seen[spec.name] {
			return nil, fmt.Errorf("serve: duplicate model name %q", spec.name)
		}
		seen[spec.name] = true
		spec.object = spec.name + ".ckpt"
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no models in %q", s)
	}
	return specs, nil
}

// servingApp wires checkpoint files -> object store -> registry -> service.
type servingApp struct {
	store   *objstore.Store
	reg     *serve.Registry
	svc     *serve.Service
	metrics *obs.Registry
	specs   []modelSpec
}

func buildServing(specs []modelSpec, cfg serve.Config, quant string) (*servingApp, error) {
	store := objstore.New()
	if err := store.CreateContainer(core.ContainerModels); err != nil {
		return nil, err
	}
	reg, err := serve.NewRegistry(store, core.ContainerModels)
	if err != nil {
		return nil, err
	}
	// Quantization is set before the first Register so every load applies
	// it; an unsupported mode surfaces as that first Register's error.
	if err := reg.SetQuant(quant); err != nil {
		return nil, err
	}
	a := &servingApp{store: store, reg: reg, metrics: obs.NewRegistry(), specs: specs}
	for _, spec := range specs {
		data, err := os.ReadFile(spec.file)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if _, err := store.Put(core.ContainerModels, spec.object, data, nil); err != nil {
			return nil, err
		}
		if err := reg.Register(spec.name, spec.object); err != nil {
			return nil, err
		}
	}
	// Polling is driven by refresh (which also re-reads the files), not by
	// the service's own store-only poller.
	svcCfg := cfg
	svcCfg.PollInterval = 0
	a.svc, err = serve.New(svcCfg, reg, a.metrics)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// refresh re-reads every checkpoint file into the store and polls the
// registry: editing a checkpoint on disk hot-swaps the served model. An
// unchanged file produces the same ETag, so the poll is a no-op for it;
// an unreadable file leaves the currently served weights in place.
func (a *servingApp) refresh() (int, error) {
	var firstErr error
	for _, spec := range a.specs {
		data, err := os.ReadFile(spec.file)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if _, err := a.store.Put(core.ContainerModels, spec.object, data, nil); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n, err := a.reg.PollOnce()
	if firstErr == nil {
		firstErr = err
	}
	return n, firstErr
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8899", "listen address")
	models := fs.String("models", "", "name=checkpoint pairs, comma-separated (required)")
	maxBatch := fs.Int("max-batch", 0, "requests per mini-batch (0 = default)")
	window := fs.Duration("batch-window", -1, "how long to hold an open batch (-1 = default)")
	queue := fs.Int("queue", 0, "admission queue depth (0 = default)")
	deadline := fs.Duration("deadline", 0, "default per-request deadline (0 = default)")
	replicas := fs.Int("replicas", 0, fmt.Sprintf("scheduler shards per model, each with its own pilot instance (0 = 1, max %d)", serve.MaxReplicas))
	quant := fs.String("quant", "", "quantized inference mode: int8 (empty = float64)")
	poll := fs.Duration("poll", 2*time.Second, "checkpoint reload poll interval (0 disables)")
	scnFile := fs.String("scenario", "", "scenario file scripting the serving WAN (netctl pane at /netctl/)")
	fs.Parse(args)

	specs, err := parseModelSpecs(*models)
	if err != nil {
		return err
	}
	var rt *scenario.Runtime
	if *scnFile != "" {
		if rt, err = loadScenarioRuntime(*scnFile, 1); err != nil {
			return err
		}
	}
	cfg := serve.DefaultConfig()
	if *maxBatch > 0 {
		cfg.MaxBatch = *maxBatch
	}
	if *window >= 0 {
		cfg.BatchWindow = *window
	}
	if *queue > 0 {
		cfg.QueueDepth = *queue
	}
	if *deadline > 0 {
		cfg.DefaultDeadline = *deadline
	}
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, *addr, specs, cfg, *quant, *poll, rt)
}

// runServe serves until ctx is canceled, then drains the HTTP server and
// the batching schedulers. A non-nil scenario runtime scripts the serving
// WAN: its clock advances in wall time, its shapes slow the batchers, and
// the netctl control plane is mounted at /netctl/ for live mutations.
func runServe(ctx context.Context, addr string, specs []modelSpec, cfg serve.Config, quant string, poll time.Duration, rt *scenario.Runtime) error {
	a, err := buildServing(specs, cfg, quant)
	if err != nil {
		return err
	}
	defer a.svc.Close()
	var handler http.Handler = a.svc
	if rt != nil {
		fabric := netem.NewNet(rt.Seed())
		rt.Attach(fabric)
		nsrv, err := netctl.New(netctl.Config{
			Table: rt.Table(), Net: fabric, Now: rt.Clock().Now, Runtime: rt,
		})
		if err != nil {
			return err
		}
		nsrv.SetObserver(obs.Observer{Metrics: a.metrics})
		rt.SetEventHook(nsrv.PublishEvent)
		rt.Start(obs.Observer{Metrics: a.metrics})
		defer rt.Finish()
		// Shapes on the campus WAN slow every batch: a partitioned link
		// stalls like an outage, a throttled one stalls proportionally.
		a.svc.SetSlowHook(serve.ShaperSlowdown(rt.Table(), netem.CampusWAN, rt.Clock().Now, 2*time.Millisecond))
		// The scripted clock rides wall time while the server runs.
		go func() {
			const step = 100 * time.Millisecond
			t := time.NewTicker(step)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					rt.Clock().Advance(step)
				}
			}
		}()
		mux := http.NewServeMux()
		mux.Handle("/", a.svc)
		mux.Handle("/netctl/", http.StripPrefix("/netctl", nsrv))
		handler = mux
		fmt.Printf("scenario: %s; netctl pane at /netctl/\n", rt.Describe())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if poll > 0 {
		go func() {
			t := time.NewTicker(poll)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n, err := a.refresh(); err != nil {
						fmt.Fprintln(os.Stderr, "autolearn serve: poll:", err)
					} else if n > 0 {
						fmt.Printf("reloaded %d model(s)\n", n)
					}
				}
			}
		}()
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	prec := "float64"
	if quant != "" {
		prec = quant
	}
	reps := cfg.Replicas
	if reps < 1 {
		reps = 1
	}
	fmt.Printf("serving %s on %s (max batch %d, window %v, queue %d, replicas %d, %s); POST /predict, GET /models, GET /metrics\n",
		strings.Join(a.reg.Names(), ", "), ln.Addr(), cfg.MaxBatch, cfg.BatchWindow, cfg.QueueDepth, reps, prec)
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	case err := <-errc:
		return err
	}
}
