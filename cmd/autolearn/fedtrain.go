package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/edge"
	"repro/internal/faults"
	"repro/internal/fed"
	"repro/internal/gossip"
	"repro/internal/netem"
	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/pilot"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/track"
)

// cmdFedTrain drives the federated fleet: collect a tub's worth of
// driving, shard it across N simulated edge workers, and run FedAvg
// rounds over the emulated WAN, optionally under a fault profile and
// delta compression.
func cmdFedTrain(args []string) error {
	fs := flag.NewFlagSet("fed-train", flag.ExitOnError)
	workers := fs.Int("workers", 4, "edge workers in the fleet")
	rounds := fs.Int("rounds", 5, "FedAvg rounds")
	topology := fs.String("topology", "star", "dissemination topology: star (parameter server) or gossip (peer-to-peer overlay)")
	fanout := fs.Int("fanout", 3, "gossip partners each worker contacts per round (gossip topology)")
	peerK := fs.Int("peer-k", 4, "Kademlia k-bucket capacity for the gossip peer table")
	antiEntropy := fs.Int("anti-entropy", 3, "extra farthest-bucket exchange every N rounds, <0 disables (gossip topology)")
	peerLinkName := fs.String("peer-link", "wifi-local", "link profile for the gossip peer mesh")
	quorum := fs.Int("quorum", 0, "K-of-N quorum (0 = synchronous barrier; star topology)")
	compress := fs.String("compress", "none", "delta compression: "+strings.Join(fed.Profiles(), "|"))
	topKFrac := fs.Float64("topk", 0.2, "fraction of delta entries the topk profile keeps")
	profile := fs.String("faults", "", "fault profile: "+strings.Join(faults.Profiles(), "|")+" (empty = fault-free)")
	scnFile := fs.String("scenario", "", "scenario file scripting faults and link shapes (exclusive with -faults)")
	model := fs.String("model", "linear", "pilot kind")
	trackName := fs.String("track", "default-oval", "track name")
	ticks := fs.Int("ticks", 800, "ticks of driving to collect at 20 Hz")
	epochs := fs.Int("epochs", 1, "local epochs per round")
	batch := fs.Int("batch", 32, "local batch size")
	seed := fs.Int64("seed", 1, "run seed (fleet speeds, faults, training)")
	roundGap := fs.Duration("round-gap", 15*time.Second, "idle virtual time between rounds (lets fault windows progress)")
	hier := fs.Bool("hierarchical", false, "route uploads through regional aggregators (one WAN partial per region)")
	regions := fs.Int("regions", 0, "regional aggregator count (0 = ceil(sqrt(workers)))")
	ingressSerial := fs.Bool("ingress-serial", false, "serialize uploads at each receiver (models fan-in occupancy)")
	of := addObsFlags(fs)
	fs.Parse(args)

	cam := sim.SmallCameraConfig()
	res, _, err := sessionOn(*trackName, cam, func(trk *track.Track, car *sim.Car) sim.Driver {
		return sim.NewHumanDriver(sim.NewPurePursuit(trk, car.Cfg), *seed, 20)
	}, *ticks)
	if err != nil {
		return err
	}
	pcfg := pilot.DefaultConfig(pilot.Kind(*model), cam.Width, cam.Height, cam.Channels)
	samples, err := pilot.SamplesFromRecords(pcfg, res.Records)
	if err != nil {
		return err
	}
	nVal := len(samples) / 5
	if nVal < 1 {
		return fmt.Errorf("fed-train: only %d samples collected; raise -ticks", len(samples))
	}
	val := samples[len(samples)-nVal:]
	shards, err := fed.ShardSamples(samples[:len(samples)-nVal], *workers)
	if err != nil {
		return err
	}
	fmt.Printf("== fleet: %d workers, %d samples each (~), %d held out\n",
		*workers, (len(samples)-nVal) / *workers, nVal)

	cfg := fed.DefaultConfig()
	cfg.Workers = *workers
	cfg.Rounds = *rounds
	cfg.Quorum = *quorum
	cfg.LocalEpochs = *epochs
	cfg.BatchSize = *batch
	cfg.Seed = *seed
	cfg.Compress = *compress
	cfg.TopKFrac = *topKFrac
	cfg.RoundGap = *roundGap
	cfg.Hierarchical = *hier
	cfg.Regions = *regions
	cfg.IngressSerial = *ingressSerial

	o := of.observer()
	deps := fed.Deps{
		Net:   netem.NewNet(*seed),
		Hub:   edge.NewHub(),
		Store: objstore.New(),
		Obs:   o,
		Start: epoch,
	}
	if *profile != "" && *scnFile != "" {
		return fmt.Errorf("fed-train: -scenario and -faults are mutually exclusive")
	}
	if *profile != "" {
		plan, err := faults.NewPlan(*profile, *seed, epoch)
		if err != nil {
			return err
		}
		plan.Instrument(o.Metrics)
		deps.Plan = plan
		fmt.Printf("== fault profile %q (seed %d)\n", *profile, *seed)
	}
	var rt *scenario.Runtime
	if *scnFile != "" {
		rt, err = loadScenarioRuntime(*scnFile, *seed)
		if err != nil {
			return err
		}
		rt.Start(o)
		deps.Plan = rt.Plan()
		rt.Attach(deps.Net)
		fmt.Printf("== %s\n", rt.Describe())
	}

	switch *topology {
	case "star":
	case "gossip":
		gcfg := gossip.DefaultConfig()
		gcfg.Workers = *workers
		gcfg.Rounds = *rounds
		gcfg.Fanout = *fanout
		gcfg.BucketSize = *peerK
		gcfg.AntiEntropyEvery = *antiEntropy
		gcfg.LocalEpochs = *epochs
		gcfg.BatchSize = *batch
		gcfg.Seed = *seed
		gcfg.Compress = *compress
		gcfg.TopKFrac = *topKFrac
		gcfg.RoundGap = *roundGap
		link, ok := netem.ByName(*peerLinkName)
		if !ok {
			return fmt.Errorf("fed-train: unknown -peer-link %q", *peerLinkName)
		}
		gcfg.PeerLink = link
		return runGossipTrain(gcfg, deps, pcfg, shards, val, rt, of)
	default:
		return fmt.Errorf("fed-train: unknown -topology %q (have star, gossip)", *topology)
	}

	// The serving side rides along in the same trace: after the first
	// round registers the global checkpoint, every later round's ETag poll
	// hot-swaps it, so the exported trace runs end to end from worker
	// train through WAN upload and aggregation into the serving reload.
	var reloads int
	if cfg.Container != "" {
		sreg, err := serve.NewRegistry(deps.Store, cfg.Container)
		if err != nil {
			return err
		}
		sreg.Instrument(o.Metrics)
		sreg.SetTracer(o.Tracer)
		deps.AfterRound = func(round int, sc obs.SpanContext) error {
			if round == 0 {
				return sreg.RegisterCtx(sc, "fed-global", cfg.Object)
			}
			n, err := sreg.PollOnceCtx(sc)
			reloads += n
			return err
		}
	}

	global, err := pilot.New(pcfg)
	if err != nil {
		return err
	}
	run, err := fed.NewRun(cfg, deps, global, shards, val)
	if err != nil {
		return err
	}
	policy := "synchronous barrier"
	if *quorum > 0 && *quorum < *workers {
		policy = fmt.Sprintf("%d-of-%d quorum", *quorum, *workers)
	}
	topo := "flat"
	if *hier {
		topo = fmt.Sprintf("hierarchical (%d regions)", cfg.EffectiveRegions())
	}
	fmt.Printf("== fed-train: %s, %s, compress=%s, %d params\n", policy, topo, *compress, global.ParamCount())

	out, err := run.Execute()
	if err != nil {
		return err
	}
	for _, rr := range out.Rounds {
		fmt.Printf("   round %d: %d aggregated, %d dropped, %d cut, wall %8v, %7.1f KB on wire, val loss %.4f\n",
			rr.Round+1, len(rr.Participants), len(rr.Dropped), len(rr.Cut),
			rr.Wall.Round(time.Millisecond), float64(rr.BytesOnWire())/1024, rr.ValLoss)
	}
	fmt.Printf("== final val loss %.4f, %.1f KB total on wire, mean round wall %v\n",
		out.FinalValLoss, float64(out.TotalBytes)/1024, out.MeanRoundWall.Round(time.Millisecond))
	if out.CheckpointContainer != "" {
		fmt.Printf("== global checkpoint at %s/%s (served as fed-global, %d hot reloads)\n",
			out.CheckpointContainer, out.CheckpointObject, reloads)
	}
	if rt != nil {
		// Play the clock past the horizon so every scripted phase fires and
		// the exported trace carries the full transition record.
		rt.Clock().Advance(rt.Scenario().Horizon())
		fmt.Printf("== scenario: %d phase transitions\n", rt.Finish())
	}
	if deps.Plan != nil {
		fmt.Printf("== faults: %s\n", deps.Plan.Summary())
	}
	return of.write(o)
}

// runGossipTrain is fed-train's peer-to-peer mode: same fleet, same
// data, same substrates, but dissemination runs over the gossip overlay
// instead of the parameter server. The serving registry still rides
// along — it registers the head's checkpoint as soon as the first
// cloud sync lands one (under a cloud partition that may be never, and
// the run carries on regardless).
func runGossipTrain(gcfg gossip.Config, fdeps fed.Deps, pcfg pilot.Config,
	shards [][]pilot.Sample, val []pilot.Sample, rt *scenario.Runtime, of obsFlags) error {
	deps := gossip.Deps{
		Net:   fdeps.Net,
		Hub:   fdeps.Hub,
		Store: fdeps.Store,
		Plan:  fdeps.Plan,
		Obs:   fdeps.Obs,
		Start: fdeps.Start,
	}
	var reloads int
	if gcfg.Container != "" && deps.Store != nil {
		sreg, err := serve.NewRegistry(deps.Store, gcfg.Container)
		if err != nil {
			return err
		}
		sreg.Instrument(deps.Obs.Metrics)
		sreg.SetTracer(deps.Obs.Tracer)
		registered := false
		deps.AfterRound = func(round int, sc obs.SpanContext) error {
			if !registered {
				// No checkpoint yet (the head may be partitioned away from
				// the mesh): keep training, try again next round.
				if _, _, err := deps.Store.Get(gcfg.Container, gcfg.Object); err != nil {
					return nil
				}
				registered = true
				return sreg.RegisterCtx(sc, "gossip-global", gcfg.Object)
			}
			n, err := sreg.PollOnceCtx(sc)
			reloads += n
			return err
		}
	}
	genesis, err := pilot.New(pcfg)
	if err != nil {
		return err
	}
	run, err := gossip.NewRun(gcfg, deps, genesis, shards, val)
	if err != nil {
		return err
	}
	fmt.Printf("== fed-train: gossip overlay, fanout %d, bucket k=%d, anti-entropy every %d, compress=%s, %d params\n",
		run.Cfg.Fanout, run.Cfg.BucketSize, run.Cfg.AntiEntropyEvery, gcfg.Compress, genesis.ParamCount())
	out, err := run.Execute()
	if err != nil {
		return err
	}
	for _, rr := range out.Rounds {
		head := "synced"
		if !rr.HeadSynced {
			head = "headless"
		}
		fmt.Printf("   round %d: %d trained, %d offline, %d exchanges (%d parcels), lag %d, %s, wall %8v, %7.1f KB on wire, fleet loss %.4f\n",
			rr.Round+1, len(rr.Trained), len(rr.Offline), rr.Exchanges, rr.ParcelsMoved,
			rr.ConvergenceLag, head, rr.Wall.Round(time.Millisecond),
			float64(rr.BytesOnWire())/1024, rr.FleetValLoss)
	}
	fmt.Printf("== final fleet loss %.4f, head loss %.4f, %.1f KB total on wire, %d/%d head syncs\n",
		out.FinalFleetValLoss, out.FinalHeadValLoss, float64(out.TotalBytes)/1024,
		out.HeadSyncs, len(out.Rounds))
	if out.CheckpointContainer != "" {
		fmt.Printf("== head checkpoint at %s/%s (served as gossip-global, %d hot reloads)\n",
			out.CheckpointContainer, out.CheckpointObject, reloads)
	}
	if rt != nil {
		rt.Clock().Advance(rt.Scenario().Horizon())
		fmt.Printf("== scenario: %d phase transitions\n", rt.Finish())
	}
	if deps.Plan != nil {
		fmt.Printf("== faults: %s\n", deps.Plan.Summary())
	}
	return of.write(deps.Obs)
}
