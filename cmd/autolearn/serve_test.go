package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pilot"
	"repro/internal/serve"
	"repro/internal/sim"
)

func TestParseModelSpecs(t *testing.T) {
	specs, err := parseModelSpecs("teacher=/tmp/t.ckpt, /tmp/student.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].name != "teacher" || specs[0].file != "/tmp/t.ckpt" {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].name != "student" || specs[1].file != "/tmp/student.ckpt" {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	if _, err := parseModelSpecs(""); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := parseModelSpecs("a=x.ckpt,a=y.ckpt"); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestCmdServeRequiresModels(t *testing.T) {
	if err := cmdServe(nil); err == nil {
		t.Fatal("serve without -models accepted")
	}
}

// saveServePilot writes a fresh linear checkpoint and returns its config.
func saveServePilot(t *testing.T, file string, seed int64) pilot.Config {
	t.Helper()
	cfg := pilot.DefaultConfig(pilot.Linear, 24, 16, 1)
	cfg.ConvFilters1, cfg.ConvFilters2, cfg.DenseUnits = 4, 8, 16
	cfg.Seed = seed
	p, err := pilot.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(file, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestServeCommandEndToEnd drives the CLI's serving assembly: checkpoint
// files on disk are registered, answer /predict, and hot-swap on refresh
// when a file changes.
func TestServeCommandEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "student.ckpt")
	cfg := saveServePilot(t, ckpt, 1)

	specs, err := parseModelSpecs("student=" + ckpt)
	if err != nil {
		t.Fatal(err)
	}
	app, err := buildServing(specs, serve.DefaultConfig(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer app.svc.Close()
	ts := httptest.NewServer(app.svc)
	defer ts.Close()

	f, err := sim.NewFrame(cfg.Width, cfg.Height, cfg.Channels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Pix {
		f.Pix[i] = uint8(i % 251)
	}
	body, _ := json.Marshal(map[string]any{
		"model": "student", "width": cfg.Width, "height": cfg.Height, "channels": cfg.Channels,
		"frames": []string{base64.StdEncoding.EncodeToString(f.Pix)},
	})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pred struct {
		Angle    float64 `json:"angle"`
		Throttle float64 `json:"throttle"`
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	infoBefore, _ := app.reg.Info("student")
	// Unchanged file: refresh is a no-op.
	if n, err := app.refresh(); err != nil || n != 0 {
		t.Fatalf("idle refresh = (%d, %v), want (0, nil)", n, err)
	}
	// New weights on disk hot-swap the served model.
	saveServePilot(t, ckpt, 42)
	n, err := app.refresh()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("refresh reloaded %d models, want 1", n)
	}
	infoAfter, _ := app.reg.Info("student")
	if infoAfter.ETag == infoBefore.ETag {
		t.Error("ETag unchanged after checkpoint rewrite")
	}
	resp, err = http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pred2 struct {
		Angle    float64 `json:"angle"`
		Throttle float64 `json:"throttle"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pred2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pred2.Angle == pred.Angle && pred2.Throttle == pred.Throttle {
		t.Error("prediction identical after hot swap")
	}
}

// TestServeCommandQuantReplicas assembles the CLI serving stack with the
// -quant/-replicas options applied and checks both survive into the
// registry's /models metadata; an unsupported mode must fail the build.
func TestServeCommandQuantReplicas(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "student.ckpt")
	saveServePilot(t, ckpt, 1)
	specs, err := parseModelSpecs("student=" + ckpt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serve.DefaultConfig()
	cfg.Replicas = 2
	app, err := buildServing(specs, cfg, "int8")
	if err != nil {
		t.Fatal(err)
	}
	defer app.svc.Close()
	info, ok := app.reg.Info("student")
	if !ok {
		t.Fatal("student not registered")
	}
	if info.Quant != "int8" || info.Replicas != 2 {
		t.Fatalf("ModelInfo quant=%q replicas=%d, want int8/2", info.Quant, info.Replicas)
	}

	if _, err := buildServing(specs, serve.DefaultConfig(), "int4"); err == nil {
		t.Fatal("unsupported quantization mode accepted")
	}
}
