package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pilot"
	"repro/internal/sim"
	"repro/internal/track"
	"repro/internal/tub"
	"repro/internal/twin"
)

// cmdModels runs the §3.3 six-model comparison: train each architecture on
// the same expert dataset, evaluate autonomously, print the table.
func cmdModels(args []string) error {
	fs := flag.NewFlagSet("models", flag.ExitOnError)
	trackName := fs.String("track", "default-oval", "track name")
	ticks := fs.Int("ticks", 1200, "expert data-collection ticks")
	epochs := fs.Int("epochs", 8, "training epochs per model")
	evalTicks := fs.Int("eval-ticks", 800, "autonomous evaluation ticks")
	of := addObsFlags(fs)
	fs.Parse(args)

	cfg := core.DefaultConfig()
	cfg.Track = *trackName
	cfg.Camera.Width, cfg.Camera.Height = 32, 24
	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	o := of.observer()
	m.Instrument(o)
	root := o.Tracer.Start("models")
	car, err := m.NewCar()
	if err != nil {
		return err
	}
	ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: *ticks, OffTrackMargin: 0.1, ResetOnCrash: true},
		car, m.Camera(), sim.NewPurePursuit(m.Track, car.Cfg))
	if err != nil {
		return err
	}
	fmt.Printf("collecting %d expert records on %s ...\n", *ticks, m.Track.Name)
	collect := root.Child("collect")
	data := ses.Run(epoch)
	collect.SetAttr("records", len(data.Records))
	collect.SetSimDuration("drive", data.Duration)
	collect.End()

	fmt.Printf("%-12s %-9s %-9s %-6s %-8s %-8s %s\n",
		"model", "params", "valLoss", "laps", "crashes", "speed", "frontier")
	var rows []eval.Comparison
	for _, kind := range pilot.AllKinds() {
		sp := root.Child(string(kind))
		pcfg := m.DefaultPilotConfig(kind)
		pl, err := pilot.New(pcfg)
		if err != nil {
			return err
		}
		samples, err := pilot.SamplesFromRecords(pcfg, data.Records)
		if err != nil {
			return err
		}
		samples = pilot.AugmentFlip(samples)
		epochHist := o.Metrics.Histogram("autolearn_train_epoch_seconds",
			obs.DefSecondsBuckets, obs.L("pilot", string(kind)))
		hist, err := pl.Train(samples, nn.TrainConfig{
			Epochs: *epochs, BatchSize: 32, ValFrac: 0.15, Seed: 2, ClipGrad: 5,
			EpochObserver: func(_ nn.EpochStats, dur time.Duration) { epochHist.ObserveDuration(dur) }})
		if err != nil {
			return err
		}
		drv, err := pilot.NewAutoDriver(pl)
		if err != nil {
			return err
		}
		evalCar, err := m.NewCar()
		if err != nil {
			return err
		}
		evalSes, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: *evalTicks, OffTrackMargin: 0.15, ResetOnCrash: true},
			evalCar, m.Camera(), drv)
		if err != nil {
			return err
		}
		res := evalSes.Run(epoch)
		if err := drv.Err(); err != nil {
			return err
		}
		rep, err := eval.Evaluate(res, m.Track, 20)
		if err != nil {
			return err
		}
		rows = append(rows, eval.Comparison{Name: string(kind), ValLoss: hist.BestValLoss,
			ParamCount: pl.ParamCount(), Report: rep})
		sp.SetAttr("params", pl.ParamCount())
		sp.SetAttr("best_val_loss", hist.BestValLoss)
		sp.SetAttr("epochs", len(hist.Epochs))
		sp.SetAttr("laps", rep.Laps)
		sp.SetAttr("crashes", rep.Crashes)
		sp.SetAttr("frontier", rep.Frontier())
		sp.End()
		fmt.Printf("%-12s %-9d %-9.4f %-6d %-8d %-8.2f %.3f\n",
			kind, pl.ParamCount(), hist.BestValLoss, rep.Laps, rep.Crashes, rep.MeanSpeed, rep.Frontier())
	}
	if best := eval.Best(rows); best >= 0 {
		root.SetAttr("best", rows[best].Name)
		fmt.Printf("best on the speed x accuracy frontier: %s (the paper's team found: inferred)\n", rows[best].Name)
	}
	root.End()
	return of.write(o)
}

// cmdTwin runs the digital-twin divergence table.
func cmdTwin(args []string) error {
	fs := flag.NewFlagSet("twin", flag.ExitOnError)
	trackName := fs.String("track", "default-oval", "track name")
	ticks := fs.Int("ticks", 800, "ticks per plant")
	fs.Parse(args)

	trk, err := track.ByName(*trackName)
	if err != nil {
		return err
	}
	camCfg := sim.SmallCameraConfig()
	camCfg.Width, camCfg.Height = 24, 16
	carCfg := sim.DefaultCarConfig()
	fmt.Printf("%-10s %-10s %-10s %-10s %s\n", "gap", "magnitude", "posRMSE", "finalErr", "cmdRMSE")
	for _, tc := range []struct {
		name string
		p    twin.Perturbation
	}{
		{"identity", twin.Identity()},
		{"mild", twin.Mild()},
		{"severe", twin.Severe()},
	} {
		res, err := twin.Run(twin.Config{
			Track: trk, Camera: camCfg, Car: carCfg, Perturb: tc.p, Hz: 20, Ticks: *ticks,
			MakeDriver: func() sim.Driver { return sim.NewPurePursuit(trk, carCfg) },
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-10.2f %-10.3f %-10.3f %.4f\n",
			tc.name, tc.p.Magnitude(), res.PosRMSE, res.FinalPosError, res.CmdRMSE)
	}
	return nil
}

// cmdHybrid trains a teacher, distills a student, and reports the working
// hybrid runtime (student on the car, teacher in the cloud, blended).
func cmdHybrid(args []string) error {
	fs := flag.NewFlagSet("hybrid", flag.ExitOnError)
	shrink := fs.Int("shrink", 8, "distillation shrink factor")
	blend := fs.Float64("blend", 0.4, "cloud blend weight in [0,1]")
	ticks := fs.Int("ticks", 600, "evaluation ticks")
	fs.Parse(args)

	cfg := core.DefaultConfig()
	cfg.Camera.Width, cfg.Camera.Height = 24, 16
	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	s, err := m.Enroll("cli-student", "local")
	if err != nil {
		return err
	}
	work, err := os.MkdirTemp("", "autolearn-hybrid-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	p, err := m.NewPipeline(s, work)
	if err != nil {
		return err
	}
	fmt.Println("training the teacher ...")
	col, err := p.CollectData(core.Simulator, "d", 900)
	if err != nil {
		return err
	}
	if _, _, err := p.CleanData(col.TubDir); err != nil {
		return err
	}
	tr, err := p.Train(col.TubDir, pilot.Linear, "V100",
		nn.TrainConfig{Epochs: 5, BatchSize: 32, ValFrac: 0.15, Seed: 1, ClipGrad: 5},
		time.Date(2023, 9, 1, 9, 0, 0, 0, time.UTC))
	if err != nil {
		return err
	}
	dc := pilot.DefaultDistillConfig()
	dc.Shrink = *shrink
	fmt.Printf("distilling a %dx smaller student and running the hybrid loop ...\n", *shrink)
	hv, err := p.EvaluateHybrid(tr.ModelObject, core.DefaultPlacementModel(m.Net), dc, *blend, *ticks)
	if err != nil {
		return err
	}
	fmt.Printf("teacher %d params -> student %d params (distill val loss %.4f)\n",
		hv.TeacherParams, hv.StudentParams, hv.DistillLoss)
	fmt.Printf("on-car latency %v; drive: %d laps, %d crashes, mean speed %.2f m/s\n",
		hv.Latency, hv.Report.Laps, hv.Report.Crashes, hv.Report.MeanSpeed)
	return nil
}

// cmdMerge combines multiple tubs into one — the "mix and match" pathway.
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "destination tub directory (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() == 0 {
		return fmt.Errorf("merge: usage: autolearn merge -out DIR SRC1 [SRC2 ...]")
	}
	dst, err := tub.Create(*out)
	if err != nil {
		return err
	}
	var sources []*tub.Tub
	for _, dir := range fs.Args() {
		t, err := tub.Open(dir)
		if err != nil {
			return fmt.Errorf("merge: %s: %w", dir, err)
		}
		sources = append(sources, t)
	}
	n, err := tub.Merge(dst, sources...)
	if err != nil {
		return err
	}
	fmt.Printf("merged %d records from %d tubs into %s\n", n, len(sources), *out)
	return nil
}
