package main

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tub"
)

func writeTub(t *testing.T, n int, angle func(int) float64) string {
	t.Helper()
	dir := t.TempDir()
	tb, err := tub.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := tub.NewWriter(tb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f, err := sim.NewFrame(8, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(sim.Record{Frame: f, Steering: angle(i),
			Timestamp: time.Unix(1_700_000_000, 0).Add(time.Duration(i) * 50 * time.Millisecond)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunDetectAndCommit(t *testing.T) {
	dir := writeTub(t, 60, func(i int) float64 {
		if i >= 20 && i < 30 {
			return 0.9
		}
		return 0
	})
	// Dry run does not mutate.
	if err := run(dir, false, "", ""); err != nil {
		t.Fatal(err)
	}
	tb, _ := tub.Open(dir)
	if n, _ := tb.Count(); n != 60 {
		t.Fatalf("dry run mutated the tub: %d live", n)
	}
	// Commit marks.
	if err := run(dir, true, "", ""); err != nil {
		t.Fatal(err)
	}
	if n, _ := tb.Count(); n >= 60 {
		t.Error("commit marked nothing")
	}
}

func TestRunManualMarkAndRestore(t *testing.T) {
	dir := writeTub(t, 20, func(int) float64 { return 0 })
	if err := run(dir, false, "3:6,10:12", ""); err != nil {
		t.Fatal(err)
	}
	tb, _ := tub.Open(dir)
	if n, _ := tb.Count(); n != 15 {
		t.Fatalf("live = %d, want 15", n)
	}
	if err := run(dir, false, "", "3,4"); err != nil {
		t.Fatal(err)
	}
	if n, _ := tb.Count(); n != 17 {
		t.Fatalf("after restore live = %d, want 17", n)
	}
}

func TestRunBadInputs(t *testing.T) {
	dir := writeTub(t, 5, func(int) float64 { return 0 })
	if err := run(dir, false, "nonsense", ""); err == nil {
		t.Error("bad segment syntax accepted")
	}
	if err := run(dir, false, "a:b", ""); err == nil {
		t.Error("non-numeric segment accepted")
	}
	if err := run(dir, false, "", "x"); err == nil {
		t.Error("bad restore index accepted")
	}
	if err := run(t.TempDir(), false, "", ""); err == nil {
		t.Error("non-tub directory accepted")
	}
}
