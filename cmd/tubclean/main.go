// Command tubclean is the standalone data-cleaning utility from the paper
// ("this step is done manually by using the tubclean utility included in
// the DonkeyCar python package"). It proposes bad segments, optionally
// commits them, and can restore mistakes.
//
// Usage:
//
//	tubclean -tub DIR            # detect and print proposed segments
//	tubclean -tub DIR -commit    # detect and mark
//	tubclean -tub DIR -restore 3,4,5
//	tubclean -tub DIR -mark 10:20,42:45
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/tub"
)

func main() {
	dir := flag.String("tub", "", "tub directory (required)")
	commit := flag.Bool("commit", false, "commit detected segments")
	mark := flag.String("mark", "", "manual segments start:end[,start:end...]")
	restore := flag.String("restore", "", "indexes to restore i[,i...]")
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dir, *commit, *mark, *restore); err != nil {
		fmt.Fprintln(os.Stderr, "tubclean:", err)
		os.Exit(1)
	}
}

func run(dir string, commit bool, mark, restore string) error {
	t, err := tub.Open(dir)
	if err != nil {
		return err
	}
	if restore != "" {
		var idx []int
		for _, s := range strings.Split(restore, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad index %q: %w", s, err)
			}
			idx = append(idx, i)
		}
		if err := t.Restore(idx...); err != nil {
			return err
		}
		fmt.Printf("restored %d records\n", len(idx))
		return nil
	}
	if mark != "" {
		var segs []tub.Segment
		for _, s := range strings.Split(mark, ",") {
			lo, hi, ok := strings.Cut(strings.TrimSpace(s), ":")
			if !ok {
				return fmt.Errorf("bad segment %q, want start:end", s)
			}
			a, err := strconv.Atoi(lo)
			if err != nil {
				return fmt.Errorf("bad segment %q: %w", s, err)
			}
			b, err := strconv.Atoi(hi)
			if err != nil {
				return fmt.Errorf("bad segment %q: %w", s, err)
			}
			segs = append(segs, tub.Segment{Start: a, End: b})
		}
		n, err := t.CleanSegments(segs...)
		if err != nil {
			return err
		}
		fmt.Printf("marked %d records\n", n)
		return nil
	}
	segs, err := t.DetectBadSegments(tub.DefaultCleanerConfig())
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		fmt.Println("no bad segments detected")
		return nil
	}
	total := 0
	for _, s := range segs {
		fmt.Printf("segment [%d, %d) — %d records\n", s.Start, s.End, s.Len())
		total += s.Len()
	}
	if !commit {
		fmt.Printf("%d records in %d segments; re-run with -commit to mark them\n", total, len(segs))
		return nil
	}
	n, err := t.CleanSegments(segs...)
	if err != nil {
		return err
	}
	live, err := t.Count()
	if err != nil {
		return err
	}
	fmt.Printf("marked %d records, %d remain\n", n, live)
	return nil
}
