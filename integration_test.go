package repro

// Cross-package integration tests: scenarios that span most of the stack,
// beyond what any single package's tests exercise.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/pilot"
	"repro/internal/testbed"
	"repro/internal/tub"
)

// TestConcurrentStudents runs several students through collection and
// cleaning simultaneously against one shared module — the classroom
// reality the control-plane locks exist for.
func TestConcurrentStudents(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Camera.Width, cfg.Camera.Height = 16, 12
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	const students = 6
	var wg sync.WaitGroup
	errs := make(chan error, students)
	for i := 0; i < students; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("student-%d", i)
			s, err := m.Enroll(name, "edu")
			if err != nil {
				errs <- err
				return
			}
			p, err := m.NewPipeline(s, filepath.Join(root, name))
			if err != nil {
				errs <- err
				return
			}
			col, err := p.CollectData(core.Simulator, "drive", 200)
			if err != nil {
				errs <- err
				return
			}
			if _, _, err := p.CleanData(col.TubDir); err != nil {
				errs <- err
				return
			}
			// Everyone books a training slot at the same wall time; the
			// big RTX6000 pool absorbs all of them.
			start := time.Date(2023, 9, 6, 13, 0, 0, 0, time.UTC)
			if _, err := s.Reserve(testbed.NodeFilter{GPU: testbed.RTX6000}, start, start.Add(time.Hour)); err != nil {
				errs <- err
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All six slots landed on distinct nodes.
	util := m.Testbed.Utilization(testbed.NodeFilter{GPU: testbed.RTX6000},
		time.Date(2023, 9, 6, 13, 0, 0, 0, time.UTC),
		time.Date(2023, 9, 6, 14, 0, 0, 0, time.UTC))
	want := float64(students) / 40
	if util < want-0.001 || util > want+0.001 {
		t.Errorf("RTX6000 utilization %.3f, want %.3f", util, want)
	}
}

// TestModelTrainedOnOvalTransfersToWaveshare checks the cross-track
// generalization pathway students explore: train on one track, evaluate on
// another (the model sees only pixels, so this must at least run and make
// forward progress).
func TestModelTrainedOnOvalTransfersToWaveshare(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	cfgOval := core.DefaultConfig()
	cfgOval.Camera.Width, cfgOval.Camera.Height = 24, 16
	mOval, err := core.New(cfgOval)
	if err != nil {
		t.Fatal(err)
	}
	s, err := mOval.Enroll("student", "edu")
	if err != nil {
		t.Fatal(err)
	}
	p, err := mOval.NewPipeline(s, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	col, err := p.CollectData(core.Simulator, "d", 700)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.CleanData(col.TubDir); err != nil {
		t.Fatal(err)
	}
	tr, err := p.Train(col.TubDir, pilot.Linear, testbed.RTX6000,
		nn.TrainConfig{Epochs: 5, BatchSize: 32, ValFrac: 0.15, Seed: 2, ClipGrad: 5}, time.Date(2023, 9, 1, 9, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}

	// Move the checkpoint into a module on the other track and evaluate.
	data, _, err := mOval.Store.Get(core.ContainerModels, tr.ModelObject)
	if err != nil {
		t.Fatal(err)
	}
	cfgWave := cfgOval
	cfgWave.Track = "waveshare"
	mWave, err := core.New(cfgWave)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mWave.Store.Put(core.ContainerModels, tr.ModelObject, data, nil); err != nil {
		t.Fatal(err)
	}
	s2, err := mWave.Enroll("student", "edu")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := mWave.NewPipeline(s2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p2.Evaluate(tr.ModelObject, core.EdgePlacement, core.DefaultPlacementModel(mWave.Net), 400)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Report.MeanSpeed <= 0.05 {
		t.Errorf("transferred model frozen: mean speed %g", ev.Report.MeanSpeed)
	}
	t.Logf("oval->waveshare transfer: laps %d crashes %d speed %.2f",
		ev.Report.Laps, ev.Report.Crashes, ev.Report.MeanSpeed)
}

// TestTubSurvivesPackTransferUnpackTrain is the full data-logistics path:
// pack a tub, ship it through the object store, unpack on "the training
// node", and train from the unpacked copy.
func TestTubSurvivesPackTransferUnpackTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	cfg := core.DefaultConfig()
	cfg.Camera.Width, cfg.Camera.Height = 16, 12
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PublishSampleDataset("shared", 300, 11); err != nil {
		t.Fatal(err)
	}
	s, err := m.Enroll("student", "edu")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.NewPipeline(s, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	col, err := p.CollectData(core.SampleDatasets, "shared", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := tub.Open(col.TubDir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tb.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("unpacked %d records", n)
	}
	pcfg := m.DefaultPilotConfig(pilot.Inferred)
	pl, err := pilot.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := pilot.SamplesFromTub(pcfg, tb)
	if err != nil {
		t.Fatal(err)
	}
	h, err := pl.Train(samples, nn.TrainConfig{Epochs: 2, BatchSize: 32, ValFrac: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Epochs) == 0 {
		t.Fatal("no training epochs")
	}
}
