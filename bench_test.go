package repro

// This file is the reproduction harness: one benchmark per figure and
// per implied experiment of the paper (see DESIGN.md §4 for the index).
// Each benchmark regenerates the rows/series the paper reports and prints
// them once; numbers land in EXPERIMENTS.md.
//
//	F1  BenchmarkFig1Pipeline    — the full collect→clean→train→evaluate loop
//	F2  BenchmarkFig2Collection  — the three data collection paths
//	F3  BenchmarkFig3Tracks      — the two tracks' geometry and drivability
//	E1  BenchmarkE1SixModels     — six pilots: loss, params, autonomy
//	E2  BenchmarkE2GPUSweep      — training time across GPU SKUs
//	E3  BenchmarkE3Placement     — edge/cloud/hybrid control latency sweep
//	E4  BenchmarkE4DigitalTwin   — sim-vs-real divergence vs perturbation
//	E5  BenchmarkE5Trovi         — artifact adoption funnel
//	E6  BenchmarkE6ZeroToReady   — BYOD onboarding timeline
//	E7  BenchmarkE7Reservations  — classroom reservation contention
//	E8  BenchmarkE8Transfer      — tub transfer across link profiles
//
// plus the design-choice ablations called out in DESIGN.md §5:
//
//	BenchmarkAblationConvIm2col / BenchmarkAblationConvNaive
//	BenchmarkAblationCatalogSize
//	BenchmarkAblationLoopRate
//	BenchmarkAblationHybridShrink

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/fed"
	"repro/internal/gossip"
	"repro/internal/netem"
	"repro/internal/nn"
	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/pilot"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/track"
	"repro/internal/trovi"
	"repro/internal/tub"
	"repro/internal/twin"
	"repro/internal/vehicle"
)

var benchEpoch = time.Date(2023, 9, 1, 9, 0, 0, 0, time.UTC)

// fastModuleConfig shrinks the camera so CPU training stays benchable.
func fastModuleConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Camera.Width, cfg.Camera.Height = 24, 16
	return cfg
}

// printOnce gates table output so tables print once regardless of b.N.
var printedTables sync.Map

func tableOnce(name string, fn func()) {
	if _, loaded := printedTables.LoadOrStore(name, true); !loaded {
		fn()
	}
}

// ---------------------------------------------------------------- F1 ----

// BenchmarkFig1Pipeline reproduces Fig. 1: the complete AutoLearn loop on
// the simulator pathway, reporting each phase's cost.
func BenchmarkFig1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// F1 runs at a slightly larger camera than the micro benches: the
		// point is a pipeline whose product actually drives.
		cfg := core.DefaultConfig()
		cfg.Camera.Width, cfg.Camera.Height = 32, 24
		m, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		student, err := m.Enroll("bench", "edu")
		if err != nil {
			b.Fatal(err)
		}
		work := b.TempDir()
		p, err := m.NewPipeline(student, work)
		if err != nil {
			b.Fatal(err)
		}
		p.Augment = true
		col, err := p.CollectData(core.Simulator, "d", 1400)
		if err != nil {
			b.Fatal(err)
		}
		marked, remaining, err := p.CleanData(col.TubDir)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := p.Train(col.TubDir, pilot.Inferred, testbed.V100,
			nn.TrainConfig{Epochs: 8, BatchSize: 32, ValFrac: 0.15, Seed: 1, ClipGrad: 5}, benchEpoch)
		if err != nil {
			b.Fatal(err)
		}
		ev, err := p.Evaluate(tr.ModelObject, core.EdgePlacement, core.DefaultPlacementModel(m.Net), 600)
		if err != nil {
			b.Fatal(err)
		}
		tableOnce("fig1", func() {
			fmt.Printf("\n[Fig1] pipeline: collected=%d cleaned=%d->%d valLoss=%.4f gpuTime=%v evalLaps=%d evalCrashes=%d meanSpeed=%.2f\n",
				col.Records, marked, remaining, tr.History.BestValLoss,
				tr.SimGPUTime.Round(time.Second), ev.Report.Laps, ev.Report.Crashes, ev.Report.MeanSpeed)
		})
		b.ReportMetric(tr.History.BestValLoss, "valloss")
		b.ReportMetric(float64(ev.Report.Laps), "laps")
	}
}

// ---------------------------------------------------------------- F2 ----

// BenchmarkFig2Collection reproduces Fig. 2: the three data collection
// paths, reporting records obtained and the cost of each path.
func BenchmarkFig2Collection(b *testing.B) {
	// The regular pathway has a physical car; the digital default would
	// reject the third collection path.
	cfg := fastModuleConfig()
	cfg.Pathway = core.Regular
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.PublishSampleDataset("oval-sample", 600, 3); err != nil {
		b.Fatal(err)
	}
	student, err := m.Enroll("bench", "edu")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.NewPipeline(student, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		sample, err := p.CollectData(core.SampleDatasets, "oval-sample", 0)
		if err != nil {
			b.Fatal(err)
		}
		simu, err := p.CollectData(core.Simulator, "sim", 600)
		if err != nil {
			b.Fatal(err)
		}
		phys, err := p.CollectData(core.PhysicalCar, "car", 600)
		if err != nil {
			b.Fatal(err)
		}
		tableOnce("fig2", func() {
			fmt.Printf("\n[Fig2] %-16s %-9s %-6s %-7s %s\n", "path", "records", "bad", "laps", "cost")
			fmt.Printf("[Fig2] %-16s %-9d %-6s %-7s download %v\n", sample.Path, sample.Records, "-", "-", sample.Transfer.Round(time.Millisecond))
			fmt.Printf("[Fig2] %-16s %-9d %-6d %-7d drive %v\n", simu.Path, simu.Records, simu.Bad, simu.Laps, simu.Drive)
			fmt.Printf("[Fig2] %-16s %-9d %-6d %-7d drive %v\n", phys.Path, phys.Records, phys.Bad, phys.Laps, phys.Drive)
		})
	}
}

// ---------------------------------------------------------------- F3 ----

// BenchmarkFig3Tracks reproduces Fig. 3: both tracks' geometry versus the
// paper's measurements and the expert's drivability on each.
func BenchmarkFig3Tracks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := make([]string, 0, 2)
		for _, name := range []string{"default-oval", "waveshare"} {
			trk, err := track.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			s := trk.Summarize()
			car, err := sim.NewCar(sim.DefaultCarConfig())
			if err != nil {
				b.Fatal(err)
			}
			cam, err := sim.NewCamera(sim.SmallCameraConfig(), trk)
			if err != nil {
				b.Fatal(err)
			}
			ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: 1200, OffTrackMargin: 0.1, ResetOnCrash: true},
				car, cam, sim.NewPurePursuit(trk, car.Cfg))
			if err != nil {
				b.Fatal(err)
			}
			res := ses.Run(benchEpoch)
			rep, err := eval.Evaluate(res, trk, 20)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, fmt.Sprintf("[Fig3] %-13s inner %5.1fin outer %5.1fin width %4.1fin | laps %d crashes %d meanLap %v",
				s.Name, s.InnerLength/track.MetersPerInch, s.OuterLength/track.MetersPerInch,
				s.AvgWidth/track.MetersPerInch, rep.Laps, rep.Crashes, rep.MeanLap.Round(100*time.Millisecond)))
		}
		tableOnce("fig3", func() {
			fmt.Println()
			fmt.Println("[Fig3] paper: oval inner 330in outer 509in width 27.59in")
			for _, r := range rows {
				fmt.Println(r)
			}
		})
	}
}

// ---------------------------------------------------------------- E1 ----

// BenchmarkE1SixModels reproduces the §3.3 six-model comparison: each of
// the six pilots is trained on the same cleaned dataset and evaluated
// autonomously; the paper's finding is that the inferred model sits on the
// speed×accuracy frontier.
func BenchmarkE1SixModels(b *testing.B) {
	// E1 uses a slightly larger camera than the other benches: the model
	// comparison is about steering accuracy, which 24x16 frames undersell.
	cfg := core.DefaultConfig()
	cfg.Camera.Width, cfg.Camera.Height = 32, 24
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Shared dataset: one clean expert drive.
	car, err := m.NewCar()
	if err != nil {
		b.Fatal(err)
	}
	ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: 1600, OffTrackMargin: 0.1, ResetOnCrash: true},
		car, m.Camera(), sim.NewPurePursuit(m.Track, car.Cfg))
	if err != nil {
		b.Fatal(err)
	}
	data := ses.Run(benchEpoch)
	b.ResetTimer()

	for i := 0; i < b.N; i++ {
		rows := make([]eval.Comparison, 0, 6)
		for _, kind := range pilot.AllKinds() {
			cfg := m.DefaultPilotConfig(kind)
			pl, err := pilot.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			samples, err := pilot.SamplesFromRecords(cfg, data.Records)
			if err != nil {
				b.Fatal(err)
			}
			// Standard DonkeyCar augmentation: mirrored copies balance the
			// one-way oval's turn distribution.
			samples = pilot.AugmentFlip(samples)
			hist, err := pl.Train(samples, nn.TrainConfig{Epochs: 8, BatchSize: 32, ValFrac: 0.15, Seed: 2, ClipGrad: 5})
			if err != nil {
				b.Fatal(err)
			}
			// Evaluate from three start positions and aggregate, so one
			// lucky or unlucky corner does not decide the ranking.
			agg := eval.Report{}
			for _, startS := range []float64{0, 3.5, 7.0} {
				drv, err := pilot.NewAutoDriver(pl)
				if err != nil {
					b.Fatal(err)
				}
				evalCar, err := m.NewCar()
				if err != nil {
					b.Fatal(err)
				}
				evalSes, err := sim.NewSession(sim.SessionConfig{
					Hz: 20, MaxTicks: 600, StartS: startS, OffTrackMargin: 0.15, ResetOnCrash: true,
				}, evalCar, m.Camera(), drv)
				if err != nil {
					b.Fatal(err)
				}
				res := evalSes.Run(benchEpoch)
				if err := drv.Err(); err != nil {
					b.Fatal(err)
				}
				rep, err := eval.Evaluate(res, m.Track, 20)
				if err != nil {
					b.Fatal(err)
				}
				agg.Laps += rep.Laps
				agg.Crashes += rep.Crashes
				agg.MeanSpeed += rep.MeanSpeed / 3
			}
			rows = append(rows, eval.Comparison{
				Name:       string(kind),
				TrainLoss:  hist.FinalTrainLoss(),
				ValLoss:    hist.BestValLoss,
				ParamCount: pl.ParamCount(),
				Report:     agg,
			})
		}
		best := eval.Best(rows)
		tableOnce("e1", func() {
			fmt.Printf("\n[E1] %-12s %-9s %-9s %-9s %-5s %-7s %-7s %s\n",
				"model", "params", "trainL", "valL", "laps", "crashes", "speed", "frontier")
			for j, r := range rows {
				marker := " "
				if j == best {
					marker = "*"
				}
				fmt.Printf("[E1] %-12s %-9d %-9.4f %-9.4f %-5d %-7d %-7.2f %.3f %s\n",
					r.Name, r.ParamCount, r.TrainLoss, r.ValLoss,
					r.Report.Laps, r.Report.Crashes, r.Report.MeanSpeed, r.Report.Frontier(), marker)
			}
			fmt.Printf("[E1] best on the speed x accuracy frontier: %s (paper found: inferred)\n", rows[best].Name)
		})
	}
}

// ---------------------------------------------------------------- E2 ----

// BenchmarkE2GPUSweep reproduces the §3.3 GPU-node sweep: the same
// training job timed on every SKU the paper lists.
func BenchmarkE2GPUSweep(b *testing.B) {
	// A full 50k-record dataset (the top of the paper's 10-50k range)
	// through a DonkeyCar-scale model.
	job := testbed.TrainingJob{Samples: 50_000, ParamCount: 5_000_000, Epochs: 30, BatchSize: 64}
	gpus := []testbed.GPUType{testbed.A100, testbed.V100NVLink, testbed.V100, testbed.RTX6000, testbed.P100}
	for i := 0; i < b.N; i++ {
		durations := make([]time.Duration, len(gpus))
		for j, g := range gpus {
			inst := &testbed.Instance{GPU: g, GPUCount: 1}
			d, err := inst.TrainingTime(job)
			if err != nil {
				b.Fatal(err)
			}
			durations[j] = d
		}
		tableOnce("e2", func() {
			fmt.Printf("\n[E2] training job: %d samples x %d params x %d epochs\n", job.Samples, job.ParamCount, job.Epochs)
			for j, g := range gpus {
				fmt.Printf("[E2] %-12s %8v (%.2fx V100)\n", g, durations[j].Round(time.Second),
					float64(durations[2])/float64(durations[j]))
			}
		})
	}
}

// ---------------------------------------------------------------- E3 ----

// BenchmarkE3Placement reproduces the edge/cloud/hybrid inference
// trade-off sweep across WAN latencies (the "Chasing Clouds" poster).
func BenchmarkE3Placement(b *testing.B) {
	net := netem.NewNet(1)
	params := 150_000
	wans := []time.Duration{5, 20, 50, 100, 200}
	for i := 0; i < b.N; i++ {
		type row struct {
			wan time.Duration
			lat map[core.Placement]time.Duration
		}
		var rows []row
		for _, w := range wans {
			pm := core.DefaultPlacementModel(net)
			pm.Link = pm.Link.WithLatency(w * time.Millisecond)
			r := row{wan: w * time.Millisecond, lat: map[core.Placement]time.Duration{}}
			for _, pl := range core.AllPlacements() {
				d, err := pm.ControlLatency(pl, params)
				if err != nil {
					b.Fatal(err)
				}
				r.lat[pl] = d
			}
			rows = append(rows, r)
		}
		tableOnce("e3", func() {
			fmt.Printf("\n[E3] %-8s %-12s %-12s %-12s (20 Hz deadline = 50ms)\n", "wan", "edge", "cloud", "hybrid")
			for _, r := range rows {
				fmt.Printf("[E3] %-8v %-12v %-12v %-12v\n", r.wan,
					r.lat[core.EdgePlacement].Round(time.Microsecond),
					r.lat[core.CloudPlacement].Round(time.Microsecond),
					r.lat[core.HybridPlacement].Round(time.Microsecond))
			}
			// Crossover row: big model, fast link.
			pm := core.DefaultPlacementModel(net)
			pm.Link = netem.FabricManaged
			eBig, _ := pm.ControlLatency(core.EdgePlacement, 60_000_000)
			cBig, _ := pm.ControlLatency(core.CloudPlacement, 60_000_000)
			fmt.Printf("[E3] crossover (60M params, FABRIC link): edge %v vs cloud %v -> cloud wins: %v\n",
				eBig.Round(time.Millisecond), cBig.Round(time.Millisecond), cBig < eBig)
			// Driving quality vs injected control delay (the latency's
			// physical consequence), using the deterministic expert.
			for _, delay := range []int{0, 4, 9} {
				laps, crashes, speed := driveWithDelay(b, delay)
				fmt.Printf("[E3] delay %d ticks (%dms): laps %d crashes %d speed %.2f\n",
					delay, delay*50, laps, crashes, speed)
			}
		})
	}
}

// driveWithDelay runs the expert with a fixed command delay and reports
// the resulting driving quality.
func driveWithDelay(b *testing.B, delayTicks int) (laps, crashes int, speed float64) {
	b.Helper()
	m, err := core.New(fastModuleConfig())
	if err != nil {
		b.Fatal(err)
	}
	car, err := m.NewCar()
	if err != nil {
		b.Fatal(err)
	}
	dd, err := core.NewDelayedDriver(expertFrameDriver{sim.NewPurePursuit(m.Track, car.Cfg)}, delayTicks)
	if err != nil {
		b.Fatal(err)
	}
	ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: 600, OffTrackMargin: 0.15, ResetOnCrash: true},
		car, m.Camera(), dd)
	if err != nil {
		b.Fatal(err)
	}
	res := ses.Run(benchEpoch)
	return res.Laps, res.Crashes, res.MeanSpeed
}

// expertFrameDriver exposes the pure-pursuit expert as a FrameDriver so
// the delay wrapper accepts it.
type expertFrameDriver struct{ pp *sim.PurePursuit }

func (e expertFrameDriver) DriveFrame(_ *sim.Frame, st sim.CarState) (float64, float64) {
	return e.pp.Drive(st)
}
func (e expertFrameDriver) Drive(st sim.CarState) (float64, float64) { return e.pp.Drive(st) }

// ---------------------------------------------------------------- E4 ----

// BenchmarkE4DigitalTwin reproduces the digital-twin divergence experiment
// (the "Road To Reliability" poster): divergence grows with the
// sim-to-real gap.
func BenchmarkE4DigitalTwin(b *testing.B) {
	trk, err := track.DefaultOval()
	if err != nil {
		b.Fatal(err)
	}
	camCfg := sim.SmallCameraConfig()
	camCfg.Width, camCfg.Height = 16, 12
	carCfg := sim.DefaultCarConfig()
	perts := []struct {
		name string
		p    twin.Perturbation
	}{
		{"identity", twin.Identity()},
		{"mild", twin.Mild()},
		{"severe", twin.Severe()},
	}
	for i := 0; i < b.N; i++ {
		var lines []string
		for _, tc := range perts {
			res, err := twin.Run(twin.Config{
				Track: trk, Camera: camCfg, Car: carCfg, Perturb: tc.p, Hz: 20, Ticks: 500,
				MakeDriver: func() sim.Driver { return sim.NewPurePursuit(trk, carCfg) },
			})
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("[E4] %-10s magnitude %.2f  posRMSE %.3f m  finalErr %.3f m  cmdRMSE %.4f",
				tc.name, tc.p.Magnitude(), res.PosRMSE, res.FinalPosError, res.CmdRMSE))
		}
		tableOnce("e4", func() {
			fmt.Println()
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// ---------------------------------------------------------------- E5 ----

// BenchmarkE5Trovi reproduces the §5 adoption metrics: the simulated user
// population yields the paper's funnel (35 clicks > 9 launchers > 2
// executors; 8 versions).
func BenchmarkE5Trovi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := trovi.NewHub()
		a, err := h.Publish("AutoLearn", []string{"authors"}, []byte("v1"), benchEpoch)
		if err != nil {
			b.Fatal(err)
		}
		m, err := trovi.DefaultPopulation().Run(h, a.ID, benchEpoch)
		if err != nil {
			b.Fatal(err)
		}
		tableOnce("e5", func() {
			fmt.Printf("\n[E5] %-22s %-10s %s\n", "metric", "measured", "paper")
			fmt.Printf("[E5] %-22s %-10d %d\n", "launch clicks", m.LaunchClicks, 35)
			fmt.Printf("[E5] %-22s %-10d %d\n", "launching users", m.LaunchUsers, 9)
			fmt.Printf("[E5] %-22s %-10d %d\n", "executing users", m.ExecUsers, 2)
			fmt.Printf("[E5] %-22s %-10d %d (+1 initial)\n", "versions", m.Versions, 8)
		})
		b.ReportMetric(float64(m.LaunchClicks), "clicks")
	}
}

// ---------------------------------------------------------------- E6 ----

// BenchmarkE6ZeroToReady reproduces the §3.5 BYOD zero-to-ready pathway
// timeline.
func BenchmarkE6ZeroToReady(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := edge.NewHub()
		res, err := h.ZeroToReady("car", "student", "edu", "autolearn:latest", 800<<20, benchEpoch)
		if err != nil {
			b.Fatal(err)
		}
		tableOnce("e6", func() {
			fmt.Println()
			for _, s := range res.Steps {
				fmt.Printf("[E6] %-16s %v\n", s.Name, s.Duration.Round(time.Second))
			}
			fmt.Printf("[E6] %-16s %v\n", "TOTAL", res.Total.Round(time.Second))
		})
		b.ReportMetric(res.Total.Seconds(), "s/zero-to-ready")
	}
}

// ---------------------------------------------------------------- E7 ----

// BenchmarkE7Reservations reproduces classroom contention: 30 students
// competing for scarce A100 slots with RTX6000 fallback and later-slot
// spill, measuring placement outcomes and utilization.
func BenchmarkE7Reservations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.DefaultInventory())
		if _, err := tb.CreateProject("class", "lab", true); err != nil {
			b.Fatal(err)
		}
		onA100, onRTX, spilled := 0, 0, 0
		for s := 0; s < 30; s++ {
			u := testbed.User{Name: fmt.Sprintf("s%02d", s)}
			if err := tb.AddMember("class", u); err != nil {
				b.Fatal(err)
			}
			sess, err := tb.Login(u, "class")
			if err != nil {
				b.Fatal(err)
			}
			placed := false
			for slot := 0; slot < 4 && !placed; slot++ {
				from := benchEpoch.Add(time.Duration(slot) * time.Hour)
				for _, gpu := range []testbed.GPUType{testbed.A100, testbed.RTX6000} {
					if _, err := sess.Reserve(testbed.NodeFilter{GPU: gpu}, from, from.Add(time.Hour)); err == nil {
						placed = true
						if gpu == testbed.A100 {
							onA100++
						} else {
							onRTX++
						}
						if slot > 0 {
							spilled++
						}
						break
					}
				}
			}
			if !placed {
				b.Fatal("student unplaceable")
			}
		}
		util := tb.Utilization(testbed.NodeFilter{GPU: testbed.A100}, benchEpoch, benchEpoch.Add(4*time.Hour))
		tableOnce("e7", func() {
			fmt.Printf("\n[E7] 30 students: %d on A100, %d on RTX6000, %d pushed later; A100 util %.0f%%\n",
				onA100, onRTX, spilled, util*100)
		})
	}
}

// ---------------------------------------------------------------- E8 ----

// BenchmarkE8Transfer reproduces the §3.3 data movement step ("copies the
// training data using rsync"): a real tub's on-disk size moved across the
// stock link profiles, plus the object-store model download.
func BenchmarkE8Transfer(b *testing.B) {
	// Build a real tub once to get a genuine byte size.
	dir := b.TempDir()
	t, err := tub.Create(dir)
	if err != nil {
		b.Fatal(err)
	}
	w, err := tub.NewWriter(t)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		f, err := sim.NewFrame(24, 16, 1)
		if err != nil {
			b.Fatal(err)
		}
		for j := range f.Pix {
			f.Pix[j] = uint8(rng.Intn(256))
		}
		if _, err := w.Write(sim.Record{Frame: f, Steering: 0.1, Throttle: 0.4,
			Timestamp: benchEpoch.Add(time.Duration(i) * 50 * time.Millisecond)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	size, err := t.SizeBytes()
	if err != nil {
		b.Fatal(err)
	}
	links := []netem.Link{netem.WiFiLocal, netem.HomeBroadband, netem.CampusWAN, netem.FabricManaged}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := netem.NewNet(1)
		var lines []string
		for _, l := range links {
			res, err := net.Transfer(l, size)
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("[E8] %-16s %8.2f MB in %8v (%.1f Mbit/s effective)",
				l.Name, float64(size)/1e6, res.Duration.Round(time.Millisecond), res.Throughput*8/1e6))
		}
		tableOnce("e8", func() {
			fmt.Printf("\n[E8] tub: 300 records, %d bytes on disk\n", size)
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// ----------------------------------------------------------- ablations ----

// BenchmarkAblationConvIm2col and BenchmarkAblationConvNaive compare the
// two Conv2D kernels (DESIGN.md §5): the im2col lowering should win.
func benchConv(b *testing.B, naive bool) {
	rng := rand.New(rand.NewSource(1))
	c, err := nn.NewConv2D(1, 8, 5, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	c.Naive = naive
	x := nn.NewTensor(16, 1, 48, 64)
	x.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConvIm2col(b *testing.B) { benchConv(b, false) }
func BenchmarkAblationConvNaive(b *testing.B)  { benchConv(b, true) }

// BenchmarkAblationCatalogSize sweeps the tub catalog chunk size to show
// write-throughput sensitivity.
func BenchmarkAblationCatalogSize(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("catalog=%d", size), func(b *testing.B) {
			frame, err := sim.NewFrame(24, 16, 1)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				dir, err := os.MkdirTemp("", "tub-ablation-*")
				if err != nil {
					b.Fatal(err)
				}
				t, err := tub.Create(dir)
				if err != nil {
					b.Fatal(err)
				}
				w, err := tub.NewWriter(t)
				if err != nil {
					b.Fatal(err)
				}
				w.CatalogSize = size
				for r := 0; r < 200; r++ {
					if _, err := w.Write(sim.Record{Frame: frame, Timestamp: benchEpoch}); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				os.RemoveAll(dir)
			}
		})
	}
}

// BenchmarkAblationLoopRate compares the fixed-Hz vehicle loop with a
// free-running loop on the same parts (DESIGN.md §5: drive-loop jitter).
func BenchmarkAblationLoopRate(b *testing.B) {
	for _, mode := range []string{"fixed-20hz", "free-run"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := vehicle.New(20)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "free-run" {
					v.Sleeper = func(time.Duration) {}
				}
				work := 0
				if err := v.Add(vehicle.PartFunc{PartName: "w", Fn: func(*vehicle.Memory) error {
					work++
					return nil
				}}); err != nil {
					b.Fatal(err)
				}
				ticks := 10
				if mode == "free-run" {
					ticks = 1000
				}
				stats, err := v.Start(ticks)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Ticks)/stats.WallTime.Seconds(), "ticks/s")
			}
		})
	}
}

// BenchmarkAblationHybridShrink sweeps the hybrid placement's distillation
// factor: latency falls as the on-car model shrinks.
func BenchmarkAblationHybridShrink(b *testing.B) {
	net := netem.NewNet(1)
	for i := 0; i < b.N; i++ {
		var lines []string
		for _, shrink := range []int{2, 4, 8, 16} {
			pm := core.DefaultPlacementModel(net)
			pm.HybridShrink = shrink
			d, err := pm.ControlLatency(core.HybridPlacement, 150_000)
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("[Ablation] hybrid shrink %2dx -> %v", shrink, d.Round(time.Microsecond)))
		}
		tableOnce("hybrid-shrink", func() {
			fmt.Println()
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// BenchmarkAblationBatchNorm compares training the linear pilot with and
// without batch normalization in the encoder (DonkeyCar's stock models use
// BN; the small fast configs here default to off).
func BenchmarkAblationBatchNorm(b *testing.B) {
	m, err := core.New(fastModuleConfig())
	if err != nil {
		b.Fatal(err)
	}
	car, err := m.NewCar()
	if err != nil {
		b.Fatal(err)
	}
	ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: 500, OffTrackMargin: 0.1, ResetOnCrash: true},
		car, m.Camera(), sim.NewPurePursuit(m.Track, car.Cfg))
	if err != nil {
		b.Fatal(err)
	}
	data := ses.Run(benchEpoch)
	for _, useBN := range []bool{false, true} {
		name := "plain"
		if useBN {
			name = "batchnorm"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := m.DefaultPilotConfig(pilot.Linear)
				cfg.BatchNorm = useBN
				pl, err := pilot.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				samples, err := pilot.SamplesFromRecords(cfg, data.Records)
				if err != nil {
					b.Fatal(err)
				}
				h, err := pl.Train(samples, nn.TrainConfig{Epochs: 3, BatchSize: 32, ValFrac: 0.15, Seed: 2, ClipGrad: 5})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(h.BestValLoss, "valloss")
			}
		})
	}
}

// ---------------------------------------------------------------- E9 ----

// BenchmarkE9SpeedGovernor reproduces the "Road To Reliability" poster:
// closing the throttle loop around real-time odometer data reduces the
// speed-consistency metric (coefficient of variation) versus open-loop
// throttle on a perturbed (extra-drag) plant.
func BenchmarkE9SpeedGovernor(b *testing.B) {
	trk, err := track.DefaultOval()
	if err != nil {
		b.Fatal(err)
	}
	camCfg := sim.SmallCameraConfig()
	camCfg.Width, camCfg.Height = 16, 12
	carCfg := sim.DefaultCarConfig()
	carCfg.Drag *= 1.6

	consistency := func(governed bool) float64 {
		cam, err := sim.NewCamera(camCfg, trk)
		if err != nil {
			b.Fatal(err)
		}
		car, err := sim.NewCar(carCfg)
		if err != nil {
			b.Fatal(err)
		}
		pp := sim.NewPurePursuit(trk, carCfg)
		tick := 0
		var base sim.FrameDriver = steerWobble{pp, &tick}
		drv := base
		if governed {
			odo, err := sim.NewOdometer(2000, 0.01, 4)
			if err != nil {
				b.Fatal(err)
			}
			gov, err := sim.NewSpeedGovernor(constCruise{base}, odo, 2.0, 20)
			if err != nil {
				b.Fatal(err)
			}
			drv = gov
		}
		ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: 700, OffTrackMargin: 0.15, ResetOnCrash: true},
			car, cam, drv)
		if err != nil {
			b.Fatal(err)
		}
		res := ses.Run(benchEpoch)
		rep, err := eval.Evaluate(res, trk, 20)
		if err != nil {
			b.Fatal(err)
		}
		return rep.SpeedConsistency
	}
	for i := 0; i < b.N; i++ {
		open := consistency(false)
		governed := consistency(true)
		tableOnce("e9", func() {
			fmt.Printf("\n[E9] speed consistency (lower = steadier): open-loop %.4f, governed %.4f (%.1fx better)\n",
				open, governed, open/governed)
		})
		b.ReportMetric(governed, "cv-governed")
		b.ReportMetric(open, "cv-open")
	}
}

// steerWobble steers with the expert and emits a wobbling open-loop
// throttle like a noisy model output.
type steerWobble struct {
	pp   *sim.PurePursuit
	tick *int
}

func (s steerWobble) DriveFrame(_ *sim.Frame, st sim.CarState) (float64, float64) {
	steer, _ := s.pp.Drive(st)
	*s.tick++
	return steer, 0.45 + 0.15*math.Sin(float64(*s.tick)/9)
}
func (s steerWobble) Drive(st sim.CarState) (float64, float64) { return s.pp.Drive(st) }

// constCruise wraps a driver pinning its throttle intent to a cruise
// setpoint for the governor.
type constCruise struct{ inner sim.FrameDriver }

func (c constCruise) DriveFrame(f *sim.Frame, st sim.CarState) (float64, float64) {
	steer, _ := c.inner.DriveFrame(f, st)
	return steer, 0.5
}
func (c constCruise) Drive(st sim.CarState) (float64, float64) { return c.inner.Drive(st) }

// --------------------------------------------------------------- E10 ----

// e10DispatchCost is the modeled fixed cost of one backend forward-pass
// dispatch in the cloud serving tier: an accelerator kernel launch plus
// driver round trip, or the intra-datacenter RPC hop to a model server —
// the per-call overhead the paper's hybrid placement (§3.3, E3) attributes
// to cloud-side inference. It is charged once per InferBatch call through
// the service's slow hook, which is the defining economics of
// micro-batching: MaxBatch 1 pays it on every request, MaxBatch 32 pays it
// once per 32. The cpu/ rows below disable the hook and measure this
// host's raw scalar kernels, where the per-row forward cost is flat in
// batch size and the ratio is governed by transport overhead instead.
const e10DispatchCost = 250 * time.Microsecond

// e10Serve assembles an objstore-backed service around one checkpoint and
// returns an HTTP test server for it.
func e10Serve(b *testing.B, cfg serve.Config, ckpt []byte, model string, dispatch bool) *httptest.Server {
	b.Helper()
	store := objstore.New()
	if err := store.CreateContainer(core.ContainerModels); err != nil {
		b.Fatal(err)
	}
	if _, err := store.Put(core.ContainerModels, model+".ckpt", ckpt, nil); err != nil {
		b.Fatal(err)
	}
	reg, err := serve.NewRegistry(store, core.ContainerModels)
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.Register(model, model+".ckpt"); err != nil {
		b.Fatal(err)
	}
	svc, err := serve.New(cfg, reg, nil)
	if err != nil {
		b.Fatal(err)
	}
	if dispatch {
		svc.SetSlowHook(func() time.Duration { return e10DispatchCost })
	}
	b.Cleanup(svc.Close)
	ts := httptest.NewServer(svc)
	b.Cleanup(ts.Close)
	return ts
}

// e10Drive fires b.N POST /predict requests from `clients` closed-loop
// goroutines and reports sustained req/s.
func e10Drive(b *testing.B, ts *httptest.Server, body []byte, clients int) {
	b.Helper()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: clients * 2, MaxIdleConnsPerHost: clients * 2,
	}}
	do := func() error {
		resp, err := client.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	if err := do(); err != nil { // warm connections, model, and scratch
		b.Fatal(err)
	}
	b.ResetTimer()
	var issued int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for atomic.AddInt64(&issued, 1) <= int64(b.N) {
				if err := do(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "req/s")
	}
}

// BenchmarkE10Serving measures the batched inference service end to end
// over HTTP: the same pilot served request-at-a-time (MaxBatch 1) versus
// micro-batched (MaxBatch 32) at 1/8/32 concurrent clients, with the
// backend dispatch model above charged per forward call. The window/ rows
// sweep the batch window at 32 clients, and the cpu/ rows record this
// host's no-dispatch baseline for reference.
func BenchmarkE10Serving(b *testing.B) {
	const (
		servingW, servingH = 24, 16
		servingModel       = "student"
	)
	cfg := pilot.DefaultConfig(pilot.Linear, servingW, servingH, 1)
	p, err := pilot.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := p.Save(&ckpt); err != nil {
		b.Fatal(err)
	}
	frame, err := sim.NewFrame(servingW, servingH, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	body, err := json.Marshal(map[string]any{
		"model": servingModel, "width": servingW, "height": servingH, "channels": 1,
		"frames": []string{base64.StdEncoding.EncodeToString(frame.Pix)},
	})
	if err != nil {
		b.Fatal(err)
	}

	base := serve.Config{QueueDepth: 1024, DefaultDeadline: 10 * time.Second}
	single := base
	single.MaxBatch, single.BatchWindow = 1, 0
	batched := base
	batched.MaxBatch, batched.BatchWindow = 32, 2*time.Millisecond

	for _, clients := range []int{1, 8, 32} {
		clients := clients
		b.Run(fmt.Sprintf("single/clients%d", clients), func(b *testing.B) {
			e10Drive(b, e10Serve(b, single, ckpt.Bytes(), servingModel, true), body, clients)
		})
	}
	for _, clients := range []int{1, 8, 32} {
		clients := clients
		b.Run(fmt.Sprintf("batched/clients%d", clients), func(b *testing.B) {
			e10Drive(b, e10Serve(b, batched, ckpt.Bytes(), servingModel, true), body, clients)
		})
	}
	for _, window := range []time.Duration{0, 500 * time.Microsecond, 5 * time.Millisecond} {
		window := window
		b.Run(fmt.Sprintf("window%v/clients32", window), func(b *testing.B) {
			cfg := batched
			cfg.BatchWindow = window
			e10Drive(b, e10Serve(b, cfg, ckpt.Bytes(), servingModel, true), body, 32)
		})
	}
	// Raw-CPU reference: no dispatch model, so single and batched differ
	// only by the per-forward fixed cost the scalar kernels amortize.
	b.Run("cpu/single/clients32", func(b *testing.B) {
		e10Drive(b, e10Serve(b, single, ckpt.Bytes(), servingModel, false), body, 32)
	})
	b.Run("cpu/batched/clients32", func(b *testing.B) {
		e10Drive(b, e10Serve(b, batched, ckpt.Bytes(), servingModel, false), body, 32)
	})
}

// BenchmarkPilotInference measures single-frame inference cost per
// architecture — the number the placement model prices with ParamCount.
func BenchmarkPilotInference(b *testing.B) {
	for _, kind := range pilot.AllKinds() {
		b.Run(string(kind), func(b *testing.B) {
			cfg := pilot.DefaultConfig(kind, 64, 48, 1)
			p, err := pilot.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			frame, err := sim.NewFrame(64, 48, 1)
			if err != nil {
				b.Fatal(err)
			}
			need := 1
			if kind == pilot.RNN || kind == pilot.Conv3D {
				need = cfg.SeqLen
			}
			s := pilot.Sample{}
			for i := 0; i < need; i++ {
				s.Frames = append(s.Frames, frame)
			}
			if kind == pilot.Memory {
				s.PrevCmds = make([][2]float64, cfg.MemoryLen)
			}
			b.ReportMetric(float64(p.ParamCount()), "params")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Infer(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// e11Samples builds the federated fleet's synthetic driving set: frames
// whose bright column encodes steering, at the small geometry the serving
// benchmarks use, so local training stays CPU-cheap.
func e11Samples(b *testing.B, cfg pilot.Config, n int) []pilot.Sample {
	b.Helper()
	recs := make([]sim.Record, n)
	for i := 0; i < n; i++ {
		f, err := sim.NewFrame(cfg.Width, cfg.Height, 1)
		if err != nil {
			b.Fatal(err)
		}
		angle := math.Sin(float64(i) / 5)
		col := int((angle + 1) / 2 * float64(cfg.Width-1))
		for y := 0; y < cfg.Height; y++ {
			f.Set(col, y, 255)
		}
		recs[i] = sim.Record{Index: i, Frame: f, Steering: angle, Throttle: 0.5,
			Timestamp: benchEpoch.Add(time.Duration(i) * 50 * time.Millisecond)}
	}
	samples, err := pilot.SamplesFromRecords(cfg, recs)
	if err != nil {
		b.Fatal(err)
	}
	return samples
}

// e11Run executes one federated training run and reports the three
// headline metrics: mean simulated round wall-clock (the staleness
// policy's cost), total bytes on the WAN (the compression profile's
// cost), and final validation loss (what either knob may degrade).
func e11Run(b *testing.B, quorum int, compress, profile string) {
	b.Helper()
	pcfg := pilot.DefaultConfig(pilot.Linear, 24, 16, 1)
	pcfg.ConvFilters1, pcfg.ConvFilters2, pcfg.DenseUnits = 4, 8, 16
	samples := e11Samples(b, pcfg, 220)
	val := samples[180:]

	run := func() fed.Result {
		cfg := fed.DefaultConfig()
		cfg.Workers = 4
		cfg.Rounds = 12
		cfg.LocalEpochs = 3
		cfg.BatchSize = 16
		cfg.Quorum = quorum
		cfg.Compress = compress
		cfg.TopKFrac = 0.2
		cfg.Seed = 11
		cfg.RoundGap = 8 * time.Second
		shards, err := fed.ShardSamples(samples[:180], cfg.Workers)
		if err != nil {
			b.Fatal(err)
		}
		global, err := pilot.New(pcfg)
		if err != nil {
			b.Fatal(err)
		}
		deps := fed.Deps{Net: netem.NewNet(cfg.Seed), Hub: edge.NewHub(),
			Store: objstore.New(), Start: benchEpoch}
		if profile != "" {
			plan, err := faults.NewPlan(profile, cfg.Seed, benchEpoch)
			if err != nil {
				b.Fatal(err)
			}
			deps.Plan = plan
		}
		r, err := fed.NewRun(cfg, deps, global, shards, val)
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Execute()
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	var res fed.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = run()
	}
	b.ReportMetric(float64(res.MeanRoundWall)/float64(time.Millisecond), "round_ms")
	b.ReportMetric(float64(res.TotalBytes), "bytes_on_wire")
	b.ReportMetric(res.FinalValLoss, "final_valloss")
}

// BenchmarkE11Federated is the federated-fleet experiment: the staleness
// policy pair (synchronous barrier vs 2-of-4 quorum) runs under the
// lossy-wan straggler profile, where outage retries inflate the barrier's
// round wall-clock but the quorum rides on its fastest workers; the
// compression pair (raw float64 vs top-k sparsified float16) runs
// fault-free, where top-k must cut bytes-on-wire >=3x without moving the
// final validation loss.
func BenchmarkE11Federated(b *testing.B) {
	b.Run("sync/raw/lossy-wan", func(b *testing.B) { e11Run(b, 0, "none", "lossy-wan") })
	b.Run("quorum/raw/lossy-wan", func(b *testing.B) { e11Run(b, 2, "none", "lossy-wan") })
	b.Run("sync/raw/clean", func(b *testing.B) { e11Run(b, 0, "none", "") })
	b.Run("sync/topk/clean", func(b *testing.B) { e11Run(b, 0, "topk", "") })
}

// e12Run executes one fleet-scale federated run — synthetic local updates
// (the coordination path is the measurement, not SGD), serialized upload
// ingress, a scripted fault plan driving heartbeat playback on the event
// scheduler — and reports simulated round wall plus coordinator allocations.
func e12Run(b *testing.B, workers int, hier bool) {
	b.Helper()
	// A deliberately tiny pilot: at 10k workers the fleet holds two model
	// copies per worker, and E12 measures coordination, not arithmetic.
	pcfg := pilot.DefaultConfig(pilot.Linear, 12, 8, 1)
	pcfg.ConvFilters1, pcfg.ConvFilters2, pcfg.DenseUnits = 2, 4, 8
	samples := e11Samples(b, pcfg, 40)
	// Single-sample shards that alias a small pool: fleet size is decoupled
	// from dataset size, and synthetic training never mutates samples.
	shards := make([][]pilot.Sample, workers)
	for i := range shards {
		at := i % len(samples)
		shards[i] = samples[at : at+1]
	}
	var res fed.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := fed.DefaultConfig()
		cfg.Workers = workers
		cfg.Rounds = 2
		cfg.BatchSize = 8
		cfg.Seed = 12
		cfg.Container = "" // checkpoint churn is not what E12 measures
		cfg.Hierarchical = hier
		cfg.IngressSerial = true
		cfg.SyntheticLocal = true
		plan, err := faults.NewPlan("heartbeat-gap", cfg.Seed, benchEpoch)
		if err != nil {
			b.Fatal(err)
		}
		global, err := pilot.New(pcfg)
		if err != nil {
			b.Fatal(err)
		}
		deps := fed.Deps{Net: netem.NewNet(cfg.Seed), Hub: edge.NewHub(), Plan: plan, Start: benchEpoch}
		r, err := fed.NewRun(cfg, deps, global, shards, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err = r.Execute()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.MeanRoundWall)/float64(time.Millisecond), "round_ms")
	b.ReportMetric(float64(res.TotalBytes), "bytes_on_wire")
}

// BenchmarkE12FleetScale is the fleet-scale sweep: the same coordination
// round at 100, 1k, and 10k workers, flat versus hierarchical. Under
// serialized ingress the flat topology's round wall grows linearly with the
// fleet while the hierarchical one grows ~sqrt(N) (R regional queues drain
// in parallel, then R partials cross the WAN) — the sub-linear inequality
// verify.sh guards is hier/w10000 round wall < 10x hier/w1000's.
func BenchmarkE12FleetScale(b *testing.B) {
	for _, workers := range []int{100, 1000} {
		workers := workers
		b.Run(fmt.Sprintf("flat/w%d", workers), func(b *testing.B) { e12Run(b, workers, false) })
	}
	for _, workers := range []int{100, 1000, 10000} {
		workers := workers
		b.Run(fmt.Sprintf("hier/w%d", workers), func(b *testing.B) { e12Run(b, workers, true) })
	}
}

// e13Run executes one federated run scripted by a checked-in scenario
// file: the scenario runtime owns the fault plan and the link-shape
// table, the fed deps ride its clock, and after the last round the clock
// plays past the horizon so every scripted transition fires. Reported
// metrics are the E11 trio plus transitions (the phase count actually
// replayed — a scenario that silently failed to apply reports short).
func e13Run(b *testing.B, file string) {
	b.Helper()
	pcfg := pilot.DefaultConfig(pilot.Linear, 24, 16, 1)
	pcfg.ConvFilters1, pcfg.ConvFilters2, pcfg.DenseUnits = 4, 8, 16
	samples := e11Samples(b, pcfg, 220)
	val := samples[180:]

	var res fed.Result
	var transitions int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := scenario.Load(file)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := scenario.NewRuntime(s, 11, benchEpoch)
		if err != nil {
			b.Fatal(err)
		}
		rt.Start(obs.Observer{})
		cfg := fed.DefaultConfig()
		cfg.Workers = 4
		cfg.Rounds = 8
		cfg.LocalEpochs = 2
		cfg.BatchSize = 16
		cfg.Seed = 11
		// 25s of idle virtual time per round walks the run across the
		// library files' 2-3 minute phase timelines.
		cfg.RoundGap = 25 * time.Second
		shards, err := fed.ShardSamples(samples[:180], cfg.Workers)
		if err != nil {
			b.Fatal(err)
		}
		global, err := pilot.New(pcfg)
		if err != nil {
			b.Fatal(err)
		}
		deps := fed.Deps{Net: netem.NewNet(cfg.Seed), Hub: edge.NewHub(),
			Store: objstore.New(), Plan: rt.Plan(), Start: benchEpoch}
		rt.Attach(deps.Net)
		r, err := fed.NewRun(cfg, deps, global, shards, val)
		if err != nil {
			b.Fatal(err)
		}
		res, err = r.Execute()
		if err != nil {
			b.Fatal(err)
		}
		rt.Clock().Advance(s.Horizon())
		transitions = rt.Finish()
	}
	b.StopTimer()
	b.ReportMetric(float64(res.MeanRoundWall)/float64(time.Millisecond), "round_ms")
	b.ReportMetric(float64(res.TotalBytes), "bytes_on_wire")
	b.ReportMetric(res.FinalValLoss, "final_valloss")
	b.ReportMetric(float64(transitions), "transitions")
}

// BenchmarkE13Scenario is the scenario-replay experiment: the same
// federated run under three files from the checked-in library. The clean
// control pins the fault-free cost; lossy-wan must inflate round wall
// against it (shaped bandwidth and loss slow every upload); the
// cascading outage adds partitions and a heartbeat silence on top. The
// transitions metric doubles as a replay check — it must equal each
// file's phase count, every run, or the scheduler dropped a phase.
func BenchmarkE13Scenario(b *testing.B) {
	for _, name := range []string{"clean", "lossy-wan", "cascading-outage"} {
		name := name
		b.Run(name, func(b *testing.B) { e13Run(b, "scenarios/"+name+".scn") })
	}
}

// --------------------------------------------------------------- E14 ----

// e14DispatchCost is the modeled per-batch backend dispatch cost for the
// serving scale-out rows: one accelerator kernel launch (or model-server
// RPC hop) charged per InferBatch through the slow hook, as in E10 but
// sized so scheduling — not this host's scalar kernels — dominates. With
// it in place each replica's throughput ceiling is dispatch-bound, so the
// procs sweep isolates what the issue is after: does adding replicas
// (each its own batcher + pilot instance) scale served req/s, or does a
// shared lock serialize them? The cpu/ rows disable the hook and record
// the raw-kernel baseline, which on a single physical core cannot scale
// and is reported for honesty, not as an acceptance number.
const e14DispatchCost = 2 * time.Millisecond

// e14QuantPilot builds the quantization benchmark's pilot and probe
// batch: a Linear pilot at camera 128x96 with a 2048-unit dense trunk, so
// the GEMM the int8 path accelerates carries ~94% of the MACs — the
// regime quantized edge inference targets (big dense trunk, small conv
// stem) — plus a 32-sample batch of dithered frames.
func e14QuantPilot(b *testing.B) (*pilot.Pilot, []pilot.Sample) {
	b.Helper()
	cfg := pilot.DefaultConfig(pilot.Linear, 128, 96, 1)
	cfg.ConvFilters1, cfg.ConvFilters2, cfg.DenseUnits = 8, 16, 2048
	cfg.Seed = 14
	p, err := pilot.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	samples := make([]pilot.Sample, 32)
	for i := range samples {
		f, err := sim.NewFrame(cfg.Width, cfg.Height, cfg.Channels)
		if err != nil {
			b.Fatal(err)
		}
		for j := range f.Pix {
			f.Pix[j] = uint8(rng.Intn(256))
		}
		samples[i] = pilot.Sample{Frames: []*sim.Frame{f}}
	}
	return p, samples
}

// BenchmarkE14Quantized times the same InferBatch on the float64 kernels
// versus the int8 quantized path, and reports the quantized run's max
// control drift against the float64 reference as quant_maxdelta. The
// drift is enforced here — a run over eval.QuantBudget fails the
// benchmark, so a kernel change cannot buy speed with silent accuracy
// loss and verify.sh can read both numbers from one table.
func BenchmarkE14Quantized(b *testing.B) {
	b.Run("float64", func(b *testing.B) {
		p, samples := e14QuantPilot(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.InferBatch(samples); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("int8", func(b *testing.B) {
		p, samples := e14QuantPilot(b)
		ref, err := p.InferBatch(samples)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.EnableQuant("int8"); err != nil {
			b.Fatal(err)
		}
		out, err := p.InferBatch(samples)
		if err != nil {
			b.Fatal(err)
		}
		drift, err := eval.QuantDrift(ref, out)
		if err != nil {
			b.Fatal(err)
		}
		if !eval.WithinQuantBudget(drift) {
			b.Fatalf("int8 drift %.4f exceeds budget %.2f", drift, eval.QuantBudget)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.InferBatch(samples); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(drift, "quant_maxdelta")
	})
}

// e14Serve assembles an in-process service (objstore -> registry ->
// batching schedulers) around one small checkpoint, shard-replicated
// `replicas` ways.
func e14Serve(b *testing.B, replicas int, ckpt []byte, model string, dispatch bool) *serve.Service {
	b.Helper()
	store := objstore.New()
	if err := store.CreateContainer(core.ContainerModels); err != nil {
		b.Fatal(err)
	}
	if _, err := store.Put(core.ContainerModels, model+".ckpt", ckpt, nil); err != nil {
		b.Fatal(err)
	}
	reg, err := serve.NewRegistry(store, core.ContainerModels)
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.Register(model, model+".ckpt"); err != nil {
		b.Fatal(err)
	}
	cfg := serve.Config{
		MaxBatch: 8, BatchWindow: 500 * time.Microsecond,
		QueueDepth: 1024, DefaultDeadline: 10 * time.Second,
		Replicas: replicas,
	}
	svc, err := serve.New(cfg, reg, nil)
	if err != nil {
		b.Fatal(err)
	}
	if dispatch {
		svc.SetSlowHook(func() time.Duration { return e14DispatchCost })
	}
	b.Cleanup(svc.Close)
	return svc
}

// e14Drive fires b.N in-process Predict calls from `clients` closed-loop
// goroutines and reports sustained req/s. Calling Predict directly (no
// HTTP) keeps transport cost out of the multicore-scaling measurement.
func e14Drive(b *testing.B, svc *serve.Service, model string, sample pilot.Sample, clients int) {
	b.Helper()
	ctx := context.Background()
	if _, err := svc.Predict(ctx, model, sample); err != nil { // warm model + scratch
		b.Fatal(err)
	}
	b.ResetTimer()
	var issued int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for atomic.AddInt64(&issued, 1) <= int64(b.N) {
				if _, err := svc.Predict(ctx, model, sample); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "req/s")
	}
}

// BenchmarkE14Serving is the multicore scale-out experiment: the same
// model served with Replicas = GOMAXPROCS = {1, 2, 4, 8}, driven by 8
// closed-loop clients per replica, with the dispatch model above charged
// per batch. Each replica is an independent batcher + pilot instance
// behind the least-loaded router, so req/s must grow near-linearly in
// the replica count until cores (or the router) saturate; flat rows
// would mean the shards serialize on shared state. The cpu/ rows drop
// the dispatch model and measure the raw scalar kernels.
func BenchmarkE14Serving(b *testing.B) {
	const (
		servingW, servingH = 24, 16
		servingModel       = "student"
	)
	cfg := pilot.DefaultConfig(pilot.Linear, servingW, servingH, 1)
	p, err := pilot.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := p.Save(&ckpt); err != nil {
		b.Fatal(err)
	}
	frame, err := sim.NewFrame(servingW, servingH, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	sample := pilot.Sample{Frames: []*sim.Frame{frame}}

	for _, n := range []int{1, 2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("procs%d", n), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(n)
			defer runtime.GOMAXPROCS(prev)
			svc := e14Serve(b, n, ckpt.Bytes(), servingModel, true)
			e14Drive(b, svc, servingModel, sample, 8*n)
		})
	}
	for _, n := range []int{1, 8} {
		n := n
		b.Run(fmt.Sprintf("cpu/procs%d", n), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(n)
			defer runtime.GOMAXPROCS(prev)
			svc := e14Serve(b, n, ckpt.Bytes(), servingModel, false)
			e14Drive(b, svc, servingModel, sample, 8*n)
		})
	}
}

// --------------------------------------------------------------- E15 ----

// e15Series is one E15 run distilled: the per-round validation losses,
// the total bytes billed on the links, and the 1-indexed first round at
// which the cloud partition is in force (0 for the clean control).
type e15Series struct {
	losses          []float64
	bytes           int64
	partitionedFrom int
}

// e15Converge is the convergence round count: the first round whose
// validation loss is already within 2% of the run's own final loss. A
// topology that spreads updates faster reaches its endpoint earlier.
func e15Converge(losses []float64) int {
	final := losses[len(losses)-1]
	for i, l := range losses {
		if l <= final*1.02 {
			return i + 1
		}
	}
	return len(losses)
}

// e15Survived reports whether the run kept making progress once the
// cloud link died: the final loss must beat the loss at the last clean
// round. The star topology funnels every byte through the dead link, so
// its loss series freezes bit-for-bit and this reads 0; the gossip
// overlay keeps converging peer-to-peer and reads 1. Clean-control runs
// trivially report 1.
func e15Survived(s e15Series) float64 {
	if s.partitionedFrom <= 0 || s.partitionedFrom > len(s.losses) {
		return 1
	}
	lastClean := s.losses[s.partitionedFrom-2]
	if s.losses[len(s.losses)-1] < lastClean {
		return 1
	}
	return 0
}

// e15Run executes one topology under one scenario file ("" = fault-free)
// and returns the loss series. Both topologies share the fleet shape,
// dataset, seed, and 15s round gap, so with cloud-partition.scn the WAN
// dies at 40s — after round 3, before round 4 — for both.
func e15Run(b *testing.B, topology, scn string) e15Series {
	b.Helper()
	pcfg := pilot.DefaultConfig(pilot.Linear, 24, 16, 1)
	pcfg.ConvFilters1, pcfg.ConvFilters2, pcfg.DenseUnits = 4, 8, 16
	samples := e11Samples(b, pcfg, 220)
	val := samples[180:]
	shards, err := fed.ShardSamples(samples[:180], 4)
	if err != nil {
		b.Fatal(err)
	}
	global, err := pilot.New(pcfg)
	if err != nil {
		b.Fatal(err)
	}

	const seed = 15
	net := netem.NewNet(seed)
	var rt *scenario.Runtime
	var plan *faults.Plan
	partFrom := 0
	if scn != "" {
		s, err := scenario.Load(scn)
		if err != nil {
			b.Fatal(err)
		}
		rt, err = scenario.NewRuntime(s, seed, benchEpoch)
		if err != nil {
			b.Fatal(err)
		}
		rt.Start(obs.Observer{})
		rt.Attach(net)
		plan = rt.Plan()
		partFrom = 4 // 40s partition onset lands between rounds 3 and 4
	}

	out := e15Series{partitionedFrom: partFrom}
	switch topology {
	case "star":
		cfg := fed.DefaultConfig()
		cfg.Workers, cfg.Rounds = 4, 6
		cfg.LocalEpochs, cfg.BatchSize = 2, 16
		cfg.Seed = seed
		cfg.RoundGap = 15 * time.Second
		deps := fed.Deps{Net: net, Hub: edge.NewHub(), Store: objstore.New(), Plan: plan, Start: benchEpoch}
		r, err := fed.NewRun(cfg, deps, global, shards, val)
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Execute()
		if err != nil {
			b.Fatal(err)
		}
		for _, rr := range res.Rounds {
			out.losses = append(out.losses, rr.ValLoss)
		}
		out.bytes = res.TotalBytes
	case "gossip":
		cfg := gossip.DefaultConfig()
		cfg.Workers, cfg.Rounds = 4, 6
		cfg.LocalEpochs, cfg.BatchSize = 2, 16
		cfg.Seed = seed
		cfg.RoundGap = 15 * time.Second
		deps := gossip.Deps{Net: net, Hub: edge.NewHub(), Store: objstore.New(), Plan: plan, Start: benchEpoch}
		r, err := gossip.NewRun(cfg, deps, global, shards, val)
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Execute()
		if err != nil {
			b.Fatal(err)
		}
		for _, rr := range res.Rounds {
			out.losses = append(out.losses, rr.FleetValLoss)
		}
		out.bytes = res.TotalBytes
	default:
		b.Fatalf("e15: unknown topology %q", topology)
	}
	if rt != nil {
		rt.Clock().Advance(2 * time.Hour)
		rt.Finish()
	}
	return out
}

// BenchmarkE15Gossip is the dissemination-topology experiment: star
// FedAvg versus the decentralized gossip overlay, fault-free and under
// scenarios/cloud-partition.scn. Gossip pays more bytes on the wire
// (push-pull digests plus parcel replication along every mesh edge) to
// buy partition tolerance: on the clean control both topologies converge
// to the same neighborhood, and under the partition the star's loss
// series freezes (partition_survived 0) while gossip keeps descending
// among reachable peers (partition_survived 1).
func BenchmarkE15Gossip(b *testing.B) {
	rows := []struct{ topology, scn string }{
		{"star", ""},
		{"gossip", ""},
		{"star", "scenarios/cloud-partition.scn"},
		{"gossip", "scenarios/cloud-partition.scn"},
	}
	for _, row := range rows {
		row := row
		name := row.topology + "/clean"
		if row.scn != "" {
			name = row.topology + "/cloud-partition"
		}
		b.Run(name, func(b *testing.B) {
			var s e15Series
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s = e15Run(b, row.topology, row.scn)
			}
			b.StopTimer()
			b.ReportMetric(float64(s.bytes), "bytes_on_wire")
			b.ReportMetric(float64(e15Converge(s.losses)), "rounds_to_converge")
			b.ReportMetric(e15Survived(s), "partition_survived")
			b.ReportMetric(s.losses[len(s.losses)-1], "final_valloss")
		})
	}
}
