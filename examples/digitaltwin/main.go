// Digitaltwin reproduces the digital-twin exploration (§3.3/§3.4 and the
// "Road To Reliability" SC'23 poster): the same expert driver runs in a
// nominal simulation and in a perturbed "physical" plant, and the example
// reports how trajectory, commands, and lap behaviour diverge as the
// sim-to-real gap widens — plus the speed-consistency metric on each plant.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/track"
	"repro/internal/twin"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	trk, err := track.DefaultOval()
	if err != nil {
		return err
	}
	camCfg := sim.SmallCameraConfig()
	camCfg.Width, camCfg.Height = 32, 24
	carCfg := sim.DefaultCarConfig()

	perturbations := []struct {
		name string
		p    twin.Perturbation
	}{
		{"identity (perfect twin)", twin.Identity()},
		{"mild sim-to-real gap", twin.Mild()},
		{"severe sim-to-real gap", twin.Severe()},
	}

	fmt.Printf("%-26s %-10s %-10s %-10s %-10s %s\n",
		"perturbation", "magnitude", "posRMSE", "finalErr", "cmdRMSE", "lapDelta")
	for _, tc := range perturbations {
		cfg := twin.Config{
			Track:   trk,
			Camera:  camCfg,
			Car:     carCfg,
			Perturb: tc.p,
			Hz:      20,
			Ticks:   800,
			MakeDriver: func() sim.Driver {
				return sim.NewPurePursuit(trk, carCfg)
			},
		}
		res, err := twin.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %-10.2f %-10.3f %-10.3f %-10.4f %+d\n",
			tc.name, tc.p.Magnitude(), res.PosRMSE, res.FinalPosError, res.CmdRMSE, res.LapDelta)
	}

	// Speed-consistency comparison between the twin and the severe plant
	// (the poster's reliability metric).
	fmt.Println("\nspeed consistency (coefficient of variation, lower = steadier):")
	for _, tc := range []struct {
		name string
		cfg  sim.CarConfig
	}{
		{"simulated twin", carCfg},
		{"severe physical plant", twin.Severe().Apply(carCfg)},
	} {
		car, err := sim.NewCar(tc.cfg)
		if err != nil {
			return err
		}
		cam, err := sim.NewCamera(camCfg, trk)
		if err != nil {
			return err
		}
		ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: 800, OffTrackMargin: 0.15, ResetOnCrash: true},
			car, cam, sim.NewPurePursuit(trk, tc.cfg))
		if err != nil {
			return err
		}
		res := ses.Run(time.Unix(1_700_000_000, 0))
		rep, err := eval.Evaluate(res, trk, 20)
		if err != nil {
			return err
		}
		fmt.Printf("  %-24s consistency %.3f  mean speed %.2f m/s  laps %d\n",
			tc.name, rep.SpeedConsistency, rep.MeanSpeed, rep.Laps)
	}

	// Divergence growth over time for the mild gap — the digital-twin
	// signal a student would plot.
	cfg := twin.Config{
		Track: trk, Camera: camCfg, Car: carCfg, Perturb: twin.Mild(),
		Hz: 20, Ticks: 600, SampleEvery: 100,
		MakeDriver: func() sim.Driver { return sim.NewPurePursuit(trk, carCfg) },
	}
	res, err := twin.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\nmild-gap divergence over time (one sample per 5 s):")
	for i, d := range res.Divergence {
		fmt.Printf("  t=%3ds  |Δpos| = %.3f m\n", i*5, d)
	}
	return nil
}
