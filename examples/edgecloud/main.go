// Edgecloud reproduces the edge-vs-cloud inference trade-off exploration
// ("Chasing Clouds with Donkeycar: Holistic Exploration of Edge and Cloud
// Inferencing Trade-Offs in E2E Self-Driving Cars", SC'23 poster, and the
// §3.3 extension): one trained pilot is driven under edge, cloud, and
// hybrid placements across WAN latencies, measuring control-loop latency,
// the achievable loop rate, and the actual driving quality with the
// latency injected into the simulation.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/netem"
	"repro/internal/nn"
	"repro/internal/pilot"
	"repro/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2023, 9, 1, 9, 0, 0, 0, time.UTC)
	m, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}
	student, err := m.Enroll("edgecloud-student", "example.edu")
	if err != nil {
		return err
	}
	work, err := os.MkdirTemp("", "autolearn-edgecloud-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	p, err := m.NewPipeline(student, work)
	if err != nil {
		return err
	}

	fmt.Println("training one inferred pilot to share across all placements ...")
	col, err := p.CollectData(core.Simulator, "drive", 900)
	if err != nil {
		return err
	}
	if _, _, err := p.CleanData(col.TubDir); err != nil {
		return err
	}
	tr, err := p.Train(col.TubDir, pilot.Inferred, testbed.A100,
		nn.TrainConfig{Epochs: 6, BatchSize: 32, ValFrac: 0.15, Seed: 1, ClipGrad: 5}, start)
	if err != nil {
		return err
	}
	fmt.Printf("pilot: %d params, val loss %.4f\n\n", tr.Pilot.ParamCount(), tr.History.BestValLoss)

	fmt.Printf("%-8s %-8s %-12s %-10s %-6s %-5s %-8s %s\n",
		"wan", "place", "latency", "loop-Hz", "laps", "crash", "speed", "meets 20Hz")
	for _, wanMS := range []int{5, 20, 50, 100, 200} {
		for _, placement := range core.AllPlacements() {
			pm := core.DefaultPlacementModel(m.Net)
			pm.Link = netem.CampusWAN.WithLatency(time.Duration(wanMS) * time.Millisecond)
			ev, err := p.Evaluate(tr.ModelObject, placement, pm, 500)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %-8s %-12v %-10.1f %-6d %-5d %-8.2f %v\n",
				fmt.Sprintf("%dms", wanMS), placement,
				ev.Latency.Round(time.Microsecond), core.AchievableHz(ev.Latency),
				ev.Report.Laps, ev.Report.Crashes, ev.Report.MeanSpeed,
				core.MeetsDeadline(ev.Latency, 20))
		}
	}

	fmt.Println("\ncrossover check: a 60M-parameter pilot on a FABRIC-class link")
	pm := core.DefaultPlacementModel(m.Net)
	pm.Link = netem.FabricManaged
	big := 60_000_000
	for _, placement := range core.AllPlacements() {
		lat, err := pm.ControlLatency(placement, big)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s %v (%.1f Hz)\n", placement, lat.Round(time.Microsecond), core.AchievableHz(lat))
	}

	// The pure evaluation report for the winner placement on the default WAN.
	pmDefault := core.DefaultPlacementModel(m.Net)
	best, err := p.Evaluate(tr.ModelObject, core.EdgePlacement, pmDefault, 800)
	if err != nil {
		return err
	}
	report(best.Report)
	return nil
}

func report(r eval.Report) {
	fmt.Println("\nedge placement, full report:")
	fmt.Printf("  laps %d, best lap %v, mean lap %v\n", r.Laps, r.BestLap.Round(10*time.Millisecond), r.MeanLap.Round(10*time.Millisecond))
	fmt.Printf("  mean speed %.2f m/s (max %.2f), speed consistency %.3f\n", r.MeanSpeed, r.MaxSpeed, r.SpeedConsistency)
	fmt.Printf("  RMS lateral %.3f m, max lateral %.3f m, errors/lap %.2f\n", r.RMSLateral, r.MaxLateral, r.ErrorsPerLap)
}
