// Quickstart runs the minimal AutoLearn loop from Fig. 1 end to end:
// enroll on the testbed, collect driving data in the simulator, clean it
// with tubclean, train a linear pilot on a reserved GPU node, and evaluate
// the trained model driving autonomously at the edge.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/pilot"
	"repro/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2023, 9, 1, 9, 0, 0, 0, time.UTC)

	// A module on the default oval with the small (fast) camera.
	m, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}
	student, err := m.Enroll("quickstart-student", "example.edu")
	if err != nil {
		return err
	}
	work, err := os.MkdirTemp("", "autolearn-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	p, err := m.NewPipeline(student, work)
	if err != nil {
		return err
	}

	fmt.Println("1) collecting data in the simulator ...")
	col, err := p.CollectData(core.Simulator, "my-first-drive", 800)
	if err != nil {
		return err
	}
	fmt.Printf("   %d records over %d laps (%d records look bad)\n", col.Records, col.Laps, col.Bad)

	fmt.Println("2) cleaning with tubclean ...")
	marked, remaining, err := p.CleanData(col.TubDir)
	if err != nil {
		return err
	}
	fmt.Printf("   marked %d, %d remain\n", marked, remaining)

	fmt.Println("3) training a linear pilot on a V100 node ...")
	tr, err := p.Train(col.TubDir, pilot.Linear, testbed.V100,
		nn.TrainConfig{Epochs: 5, BatchSize: 32, ValFrac: 0.15, Seed: 1, ClipGrad: 5}, start)
	if err != nil {
		return err
	}
	fmt.Printf("   lease %s on %s; rsync %v; simulated GPU time %v; val loss %.4f\n",
		tr.Lease.ID, tr.Lease.NodeID, tr.Transfer.Round(time.Millisecond),
		tr.SimGPUTime.Round(time.Second), tr.History.BestValLoss)

	fmt.Println("4) evaluating the model driving at the edge ...")
	ev, err := p.Evaluate(tr.ModelObject, core.EdgePlacement, core.DefaultPlacementModel(m.Net), 600)
	if err != nil {
		return err
	}
	fmt.Printf("   control latency %v; %d laps, %d crashes, mean speed %.2f m/s\n",
		ev.Latency.Round(time.Microsecond), ev.Report.Laps, ev.Report.Crashes, ev.Report.MeanSpeed)
	return nil
}
