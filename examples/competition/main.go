// Competition runs the paper's student-competition extension ("Students
// might also compete to train models yielding a combination of fastest
// speed with fewest errors, or accuracy following tracks of different
// shapes"): three teams train different pilot architectures on a shared
// expert dataset, then race on the training oval and on a randomly
// generated unseen track. The non-ML line follower and the RL lane keeper
// enter as baseline contestants.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/cv"
	"repro/internal/eval"
	"repro/internal/nn"
	"repro/internal/pilot"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/track"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type entry struct {
	name string
	make func(trk *track.Track) (sim.Driver, error)
}

func run() error {
	oval, err := track.DefaultOval()
	if err != nil {
		return err
	}
	unseen, err := track.Random(track.DefaultRandomConfig(42))
	if err != nil {
		return err
	}
	camCfg := sim.SmallCameraConfig()
	camCfg.Width, camCfg.Height = 32, 24
	carCfg := sim.DefaultCarConfig()

	// Shared training data: expert laps on the oval.
	fmt.Println("collecting the shared training dataset (expert, oval) ...")
	records, err := collect(oval, camCfg, carCfg, 1200)
	if err != nil {
		return err
	}

	trainPilot := func(kind pilot.Kind) func(*track.Track) (sim.Driver, error) {
		// Pilots are track-agnostic: train once on the oval data, reuse
		// everywhere. Train lazily on first use and cache.
		var cached *pilot.Pilot
		return func(*track.Track) (sim.Driver, error) {
			if cached == nil {
				cfg := pilot.DefaultConfig(kind, camCfg.Width, camCfg.Height, camCfg.Channels)
				p, err := pilot.New(cfg)
				if err != nil {
					return nil, err
				}
				samples, err := pilot.SamplesFromRecords(cfg, records)
				if err != nil {
					return nil, err
				}
				if _, err := p.Train(samples, nn.TrainConfig{
					Epochs: 8, BatchSize: 32, ValFrac: 0.15, Seed: 3, ClipGrad: 5}); err != nil {
					return nil, err
				}
				cached = p
			}
			return pilot.NewAutoDriver(cached)
		}
	}

	entries := []entry{
		{"team-linear", trainPilot(pilot.Linear)},
		{"team-inferred", trainPilot(pilot.Inferred)},
		{"team-categorical", trainPilot(pilot.Categorical)},
		{"baseline-linefollow", func(*track.Track) (sim.Driver, error) {
			return cv.NewLineFollower(), nil
		}},
		{"baseline-qlearn", func(trk *track.Track) (sim.Driver, error) {
			cfg := rl.DefaultConfig()
			cfg.Episodes = 200
			agent, err := rl.NewAgent(cfg, trk, carCfg)
			if err != nil {
				return nil, err
			}
			if _, err := agent.Train(); err != nil {
				return nil, err
			}
			return agent, nil
		}},
	}

	for _, venue := range []*track.Track{oval, unseen} {
		fmt.Printf("\n=== race on %s (centerline %.1f m) ===\n", venue.Name, venue.Centerline.Length())
		type standing struct {
			name string
			rep  eval.Report
		}
		var table []standing
		for _, e := range entries {
			drv, err := e.make(venue)
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			rep, err := race(venue, camCfg, carCfg, drv)
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			table = append(table, standing{e.name, rep})
		}
		sort.Slice(table, func(i, j int) bool {
			return table[i].rep.Frontier() > table[j].rep.Frontier()
		})
		fmt.Printf("%-22s %-6s %-8s %-8s %s\n", "entry", "laps", "crashes", "speed", "score")
		for i, s := range table {
			medal := " "
			if i == 0 {
				medal = "🏆"
			}
			fmt.Printf("%-22s %-6d %-8d %-8.2f %.3f %s\n",
				s.name, s.rep.Laps, s.rep.Crashes, s.rep.MeanSpeed, s.rep.Frontier(), medal)
		}
	}
	return nil
}

func collect(trk *track.Track, camCfg sim.CameraConfig, carCfg sim.CarConfig, ticks int) ([]sim.Record, error) {
	cam, err := sim.NewCamera(camCfg, trk)
	if err != nil {
		return nil, err
	}
	car, err := sim.NewCar(carCfg)
	if err != nil {
		return nil, err
	}
	ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: ticks, OffTrackMargin: 0.1, ResetOnCrash: true},
		car, cam, sim.NewPurePursuit(trk, carCfg))
	if err != nil {
		return nil, err
	}
	return ses.Run(time.Unix(1_700_000_000, 0)).Records, nil
}

func race(trk *track.Track, camCfg sim.CameraConfig, carCfg sim.CarConfig, drv sim.Driver) (eval.Report, error) {
	cam, err := sim.NewCamera(camCfg, trk)
	if err != nil {
		return eval.Report{}, err
	}
	car, err := sim.NewCar(carCfg)
	if err != nil {
		return eval.Report{}, err
	}
	ses, err := sim.NewSession(sim.SessionConfig{Hz: 20, MaxTicks: 800, OffTrackMargin: 0.15, ResetOnCrash: true},
		car, cam, drv)
	if err != nil {
		return eval.Report{}, err
	}
	res := ses.Run(time.Unix(1_700_000_500, 0))
	return eval.Evaluate(res, trk, 20)
}
