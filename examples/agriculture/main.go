// Agriculture demonstrates the paper's §6 future-work extension: the same
// edge-to-cloud module applied to "other intelligent autonomous vehicles
// ... such as unmanned aerial vehicles or drones, in addition to other
// applications such as precision agriculture". A survey drone — onboarded
// through the same CHI@Edge BYOD pathway as the cars — flies a lawnmower
// pattern over a crop field, detects weed patches with its nadir camera,
// and ships the findings to the object store over the WAN.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/uav"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2023, 9, 10, 8, 0, 0, 0, time.UTC)
	m, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}

	// 1) The drone is just another BYOD edge device.
	fmt.Println("onboarding the survey drone through CHI@Edge BYOD ...")
	zr, err := m.Edge.ZeroToReady("survey-drone-1", "agronomy-lab", m.Cfg.ProjectID,
		"autolearn-uav:latest", 600<<20, start)
	if err != nil {
		return err
	}
	fmt.Printf("  drone connected in %v (jupyter on port %d)\n",
		zr.Total.Round(time.Second), zr.Jupyter.TunnelPort)

	// 2) The field and the flight plan.
	field, err := uav.RandomField(60, 40, 25, 42)
	if err != nil {
		return err
	}
	fmt.Printf("field: %.0fx%.0f m with %d weed patches (ground truth)\n",
		field.W, field.H, len(field.Patches))

	fmt.Printf("\n%-10s %-9s %-10s %-10s %-9s %s\n",
		"altitude", "spacing", "waypoints", "coverage", "flight", "battery used")
	type plan struct{ alt, spacing float64 }
	for _, pl := range []plan{{4, 12}, {6, 8}, {8, 8}, {10, 6}} {
		wps, err := uav.Lawnmower(field.W, field.H, pl.alt, pl.spacing)
		if err != nil {
			return err
		}
		mission, err := uav.NewMission(wps)
		if err != nil {
			return err
		}
		drone, err := uav.New(uav.DefaultConfig())
		if err != nil {
			return err
		}
		res, err := uav.Survey(drone, mission, uav.DefaultCamera(), field, 20, 1800)
		if err != nil {
			return err
		}
		fmt.Printf("%-10.0f %-9.0f %-10d %-10.0f%% %-9s %.1f Wh\n",
			pl.alt, pl.spacing, res.Waypoints, res.Coverage*100,
			(time.Duration(res.FlightTime) * time.Second).Round(time.Second),
			res.EnergyUsed)
	}

	// 3) Ship the best survey's findings to the cloud, like the cars ship
	// tubs: detection report over the WAN into the object store.
	wps, err := uav.Lawnmower(field.W, field.H, 8, 8)
	if err != nil {
		return err
	}
	mission, err := uav.NewMission(wps)
	if err != nil {
		return err
	}
	drone, err := uav.New(uav.DefaultConfig())
	if err != nil {
		return err
	}
	res, err := uav.Survey(drone, mission, uav.DefaultCamera(), field, 20, 1800)
	if err != nil {
		return err
	}
	report := struct {
		Found    []int   `json:"patches_found"`
		Coverage float64 `json:"coverage"`
	}{Coverage: res.Coverage}
	for idx := range res.Found {
		report.Found = append(report.Found, idx)
	}
	payload, err := json.Marshal(report)
	if err != nil {
		return err
	}
	tr, err := m.Net.Transfer(netem.CampusWAN, int64(len(payload)))
	if err != nil {
		return err
	}
	if _, err := m.Store.Put(core.ContainerDatasets, "survey-report.json", payload,
		map[string]string{"kind": "uav-survey"}); err != nil {
		return err
	}
	fmt.Printf("\nsurvey report (%d bytes) uploaded in %v; %d/%d patches flagged for treatment\n",
		len(payload), tr.Duration.Round(time.Millisecond), len(res.Found), len(field.Patches))
	return nil
}
