// Classroom simulates the paper's classroom pathway at scale: a 30-student
// lab section shares the Chameleon testbed, every team's car is onboarded
// through the BYOD zero-to-ready pathway, GPU slots are contended through
// advance reservations, the instructor's notebook artifact is published to
// Trovi, and the resulting adoption metrics are reported (§3.4, §5, E7).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/testbed"
	"repro/internal/trovi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2023, 9, 6, 13, 0, 0, 0, time.UTC) // lab section, 1pm

	cfg := core.DefaultConfig()
	cfg.Pathway = core.Classroom
	m, err := core.New(cfg)
	if err != nil {
		return err
	}

	// 1) BYOD onboarding: 10 team cars go through zero-to-ready.
	fmt.Println("== BYOD onboarding (10 team cars)")
	var worst time.Duration
	for team := 1; team <= 10; team++ {
		res, err := m.Edge.ZeroToReady(
			fmt.Sprintf("team-%02d-car", team),
			fmt.Sprintf("team-%02d", team),
			m.Cfg.ProjectID, "autolearn:latest", 800<<20, start)
		if err != nil {
			return err
		}
		if res.Total > worst {
			worst = res.Total
		}
	}
	fmt.Printf("   all cars connected; slowest zero-to-ready %v\n", worst.Round(time.Second))

	// 2) GPU contention: 30 students request a same-afternoon training slot.
	fmt.Println("== GPU reservations (30 students, 1-hour slots)")
	type grant struct {
		gpu  testbed.GPUType
		slot int // 0 = on time, n = pushed n hours later
	}
	grants := map[string]grant{}
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("student-%02d", i)
		s, err := m.Enroll(name, "example.edu")
		if err != nil {
			return err
		}
		// Everyone wants an A100 first; fall back to RTX6000, then to a
		// later A100 slot — the scheduling dance advance reservations make
		// explicit.
		placed := false
		for slot := 0; slot < 4 && !placed; slot++ {
			from := start.Add(time.Duration(slot) * time.Hour)
			to := from.Add(time.Hour)
			for _, gpu := range []testbed.GPUType{testbed.A100, testbed.RTX6000} {
				if _, err := s.Reserve(testbed.NodeFilter{GPU: gpu}, from, to); err == nil {
					grants[name] = grant{gpu: gpu, slot: slot}
					placed = true
					break
				}
			}
		}
		if !placed {
			return fmt.Errorf("student %s could not be scheduled", name)
		}
	}
	byGPU := map[testbed.GPUType]int{}
	delayed := 0
	for _, g := range grants {
		byGPU[g.gpu]++
		if g.slot > 0 {
			delayed++
		}
	}
	fmt.Printf("   grants: %d on A100, %d on RTX6000; %d pushed to a later slot\n",
		byGPU[testbed.A100], byGPU[testbed.RTX6000], delayed)
	util := m.Testbed.Utilization(testbed.NodeFilter{GPU: testbed.A100}, start, start.Add(4*time.Hour))
	fmt.Printf("   A100 utilization over the lab window: %.0f%%\n", util*100)

	// 3) The instructor publishes the notebook artifact and the class (plus
	// the wider community) interacts with it on Trovi.
	fmt.Println("== Trovi artifact adoption")
	instructor, err := m.Enroll("instructor", "example.edu")
	if err != nil {
		return err
	}
	p, err := m.NewPipeline(instructor, ".")
	if err != nil {
		return err
	}
	nb, err := p.BuildNotebook("linear", testbed.RTX6000, 400, 300, start)
	if err != nil {
		return err
	}
	art, err := p.PublishToTrovi(nb, start)
	if err != nil {
		return err
	}
	pop := trovi.DefaultPopulation()
	metrics, err := pop.Run(m.Trovi, art.ID, start)
	if err != nil {
		return err
	}
	fmt.Printf("   launch clicks %d | launching users %d | executing users %d | versions %d\n",
		metrics.LaunchClicks, metrics.LaunchUsers, metrics.ExecUsers, metrics.Versions)
	fmt.Printf("   (paper reported: 35 clicks, 9 launching users, 2 executing users, 8 versions)\n")
	return nil
}
