#!/bin/sh
# Reproducible benchmark runner: runs the paper-experiment benchmarks
# (F1-F3, E1-E7, E10-E15) plus the GEMM kernel micro-benchmarks under
# pinned GOMAXPROCS, and emits a machine-readable BENCH_pr10.json recording
# ns/op, bytes/op, allocs/op and — for the serving rows — req/s, and for
# the federated rows — simulated round wall-clock (round_ms), WAN bytes
# (bytes_on_wire), and final validation loss (final_valloss) — for
# the scenario-replay rows the count of scripted phase transitions that
# actually fired (transitions) — and for the quantized-inference rows the
# max control drift against float64 (quant_maxdelta) — and for the
# dissemination-topology rows the convergence round count
# (rounds_to_converge) and whether the run kept improving through the
# cloud partition (partition_survived) — one datapoint per benchmark of
# the repo's performance trajectory.
#
# Usage: ./scripts/bench.sh
#   BENCH_OUT=path        output file (default BENCH_pr10.json)
#   BENCH_GOMAXPROCS=n    pinned worker count (default 1, the contract
#                         baseline: results are deterministic at any
#                         fixed value, but timings only compare at the
#                         same one)
#   BENCH_TIME_HEAVY=t    -benchtime for the pipeline-scale benchmarks
#                         (default 2x)
# The model seeds are pinned inside the benchmarks themselves, so two
# runs on the same machine differ only by scheduler/IO noise.
set -eu

cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_pr10.json}
export GOMAXPROCS=${BENCH_GOMAXPROCS:-1}
HEAVY_TIME=${BENCH_TIME_HEAVY:-2x}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "==> heavy benchmarks (F1-F3, E1) -benchtime=$HEAVY_TIME"
go test -run '^$' -bench \
    '^(BenchmarkFig1Pipeline|BenchmarkFig2Collection|BenchmarkFig3Tracks|BenchmarkE1SixModels)$' \
    -benchmem -benchtime "$HEAVY_TIME" . | tee -a "$raw"

echo "==> steady-state benchmarks (E2-E7)"
go test -run '^$' -bench \
    '^(BenchmarkE2GPUSweep|BenchmarkE3Placement|BenchmarkE4DigitalTwin|BenchmarkE5Trovi|BenchmarkE6ZeroToReady|BenchmarkE7Reservations)$' \
    -benchmem . | tee -a "$raw"

echo "==> serving benchmarks (E10)"
go test -run '^$' -bench '^BenchmarkE10Serving$' . | tee -a "$raw"

echo "==> federated benchmarks (E11)"
go test -run '^$' -bench '^BenchmarkE11Federated$' -benchtime 1x . | tee -a "$raw"

echo "==> fleet-scale benchmarks (E12)"
go test -run '^$' -bench '^BenchmarkE12FleetScale$' -benchmem -benchtime 1x . | tee -a "$raw"

echo "==> scenario-replay benchmarks (E13)"
go test -run '^$' -bench '^BenchmarkE13Scenario$' -benchtime 1x . | tee -a "$raw"

echo "==> dissemination-topology benchmarks (E15)"
go test -run '^$' -bench '^BenchmarkE15Gossip$' -benchtime 1x . | tee -a "$raw"

echo "==> quantized-inference benchmarks (E14)"
go test -run '^$' -bench '^BenchmarkE14Quantized$' -benchtime 2x . | tee -a "$raw"

# The replica sweep pins GOMAXPROCS inside each row (procsN runs at N),
# so the global pin does not apply; req/s compares rows to each other.
echo "==> multicore serving scale-out (E14)"
go test -run '^$' -bench '^BenchmarkE14Serving$' -benchtime 2000x . | tee -a "$raw"

echo "==> GEMM kernel micro-benchmarks"
go test -run '^$' -bench '^BenchmarkGEMM$' -benchmem \
    ./internal/nn/kerneltest/ | tee -a "$raw"

# The registry contention benchmark needs real parallelism to mean
# anything, so it pins its own GOMAXPROCS=8 regardless of the global
# setting (the goroutine count is the g* suffix, not GOMAXPROCS).
echo "==> metrics registry contention (GOMAXPROCS=8)"
GOMAXPROCS=8 go test -run '^$' -bench '^BenchmarkRegistryContention$' \
    -benchmem ./internal/obs/ | tee -a "$raw"

# POSIX sh has no pipefail, so a crashing benchmark binary exits 0
# through the tee pipelines above; refuse to emit JSON from a transcript
# that records a failure.
if grep -q '^FAIL' "$raw"; then
    echo "bench: a benchmark run failed; not writing $OUT" >&2
    exit 1
fi

awk -v gomaxprocs="$GOMAXPROCS" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""; reqs = ""
    roundms = ""; wire = ""; valloss = ""; transitions = ""; qdelta = ""
    converge = ""; survived = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "req/s") reqs = $i
        if ($(i+1) == "round_ms") roundms = $i
        if ($(i+1) == "bytes_on_wire") wire = $i
        if ($(i+1) == "final_valloss") valloss = $i
        if ($(i+1) == "transitions") transitions = $i
        if ($(i+1) == "quant_maxdelta") qdelta = $i
        if ($(i+1) == "rounds_to_converge") converge = $i
        if ($(i+1) == "partition_survived") survived = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
        name, $2, ns, (bytes == "" ? 0 : bytes), (allocs == "" ? 0 : allocs)
    if (reqs != "") printf ", \"req_per_s\": %s", reqs
    if (roundms != "") printf ", \"round_ms\": %s", roundms
    if (wire != "") printf ", \"bytes_on_wire\": %s", wire
    if (valloss != "") printf ", \"final_valloss\": %s", valloss
    if (transitions != "") printf ", \"transitions\": %s", transitions
    if (qdelta != "") printf ", \"quant_maxdelta\": %s", qdelta
    if (converge != "") printf ", \"rounds_to_converge\": %s", converge
    if (survived != "") printf ", \"partition_survived\": %s", survived
    printf "}"
}
BEGIN {
    printf "{\n  \"pr\": 10,\n  \"gomaxprocs\": %s,\n  \"benchmarks\": {\n", gomaxprocs
}
END { printf "\n  }\n}\n" }
' "$raw" > "$OUT"

echo "==> wrote $OUT"
