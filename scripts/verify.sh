#!/bin/sh
# Full pre-merge verification: vet, build, race-enabled tests, a
# fault-profile pipeline smoke run, and gofmt.
# Run from the repo root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fault-profile smoke run (lossy-wan)"
metrics=$(mktemp)
out=$(mktemp)
go run ./cmd/autolearn pipeline -faults lossy-wan -metrics "$metrics" >"$out" 2>&1 || {
    echo "fault-profile pipeline failed:" >&2
    cat "$out" >&2
    exit 1
}
if ! grep -q '^== faults:' "$out"; then
    echo "fault-profile pipeline did not complete (no fault summary):" >&2
    cat "$out" >&2
    exit 1
fi
fallbacks=$(awk '$1 == "hybrid_fallbacks_total" {print $2}' "$metrics")
if [ -z "$fallbacks" ] || [ "$fallbacks" -eq 0 ]; then
    echo "hybrid_fallbacks_total missing or zero under lossy-wan (got '${fallbacks:-absent}')" >&2
    exit 1
fi
rm -f "$metrics" "$out"

if [ -z "${SKIP_BENCH_GUARD:-}" ] && [ -f BENCH_pr3.json ]; then
    echo "==> benchmark regression guard vs BENCH_pr3.json (SKIP_BENCH_GUARD=1 to skip)"
    bout=$(mktemp)
    # Same profile as scripts/bench.sh; two rounds so one cold-page-cache
    # pass cannot fail the guard (the minimum is compared).
    GOMAXPROCS=1 go test -run '^$' -bench '^BenchmarkFig1Pipeline$' \
        -benchtime 2x -count 2 . >"$bout" 2>&1 || { cat "$bout" >&2; exit 1; }
    GOMAXPROCS=1 go test -run '^$' -bench '^BenchmarkE2GPUSweep$' \
        . >>"$bout" 2>&1 || { cat "$bout" >&2; exit 1; }
    for name in BenchmarkFig1Pipeline BenchmarkE2GPUSweep; do
        base=$(sed -n "s/.*\"$name\": {[^}]*\"ns_per_op\": \([0-9.e+]*\).*/\1/p" BENCH_pr3.json)
        new=$(awk -v n="$name" '$1 ~ "^"n {
            for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") v = $i
            if (min == "" || v + 0 < min + 0) min = v
        } END { print min }' "$bout")
        if [ -z "$base" ] || [ -z "$new" ]; then
            echo "benchmark guard: missing $name measurement (base='$base' new='$new')" >&2
            exit 1
        fi
        if awk -v n="$new" -v b="$base" 'BEGIN { exit !(n > b * 1.25) }'; then
            echo "benchmark guard: $name regressed >25%: $new ns/op vs baseline $base" >&2
            exit 1
        fi
        echo "    $name: $new ns/op (baseline $base, limit +25%)"
    done
    rm -f "$bout"
fi

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "OK: vet, build, race tests, fault smoke run, and gofmt all clean."
