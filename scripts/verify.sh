#!/bin/sh
# Full pre-merge verification: vet, build, race-enabled tests, gofmt.
# Run from the repo root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "OK: vet, build, race tests, and gofmt all clean."
