#!/bin/sh
# Full pre-merge verification: vet, build, race-enabled tests, a
# fault-profile pipeline smoke run, and gofmt.
# Run from the repo root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fault-profile smoke run (lossy-wan)"
metrics=$(mktemp)
out=$(mktemp)
go run ./cmd/autolearn pipeline -faults lossy-wan -metrics "$metrics" >"$out" 2>&1 || {
    echo "fault-profile pipeline failed:" >&2
    cat "$out" >&2
    exit 1
}
if ! grep -q '^== faults:' "$out"; then
    echo "fault-profile pipeline did not complete (no fault summary):" >&2
    cat "$out" >&2
    exit 1
fi
fallbacks=$(awk '$1 == "hybrid_fallbacks_total" {print $2}' "$metrics")
if [ -z "$fallbacks" ] || [ "$fallbacks" -eq 0 ]; then
    echo "hybrid_fallbacks_total missing or zero under lossy-wan (got '${fallbacks:-absent}')" >&2
    exit 1
fi
rm -f "$metrics" "$out"

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "OK: vet, build, race tests, fault smoke run, and gofmt all clean."
