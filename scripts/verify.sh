#!/bin/sh
# Full pre-merge verification: vet, build, race-enabled tests, a
# fault-profile pipeline smoke run, a metrics-cardinality lint, a
# cross-subsystem trace smoke (byte-identical same-seed exports), a
# scenario smoke (library checks, replay determinism, probe tolerance),
# a gossip smoke (byte-identical same-seed overlay runs, partition
# survival vs the star control), the registry contention guard, and
# gofmt.
# Run from the repo root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fault-profile smoke run (lossy-wan)"
metrics=$(mktemp)
out=$(mktemp)
go run ./cmd/autolearn pipeline -faults lossy-wan -metrics "$metrics" >"$out" 2>&1 || {
    echo "fault-profile pipeline failed:" >&2
    cat "$out" >&2
    exit 1
}
if ! grep -q '^== faults:' "$out"; then
    echo "fault-profile pipeline did not complete (no fault summary):" >&2
    cat "$out" >&2
    exit 1
fi
fallbacks=$(awk '$1 == "hybrid_fallbacks_total" {print $2}' "$metrics")
if [ -z "$fallbacks" ] || [ "$fallbacks" -eq 0 ]; then
    echo "hybrid_fallbacks_total missing or zero under lossy-wan (got '${fallbacks:-absent}')" >&2
    exit 1
fi

# Metrics-cardinality lint: a label key whose value set keeps growing
# (request IDs, timestamps, raw durations) would blow up any real TSDB.
# Every label on every series in the smoke run must stay under 32
# distinct values; put unbounded data in trace span attrs instead.
echo "==> metrics cardinality lint (<32 values per label)"
awk '
    /^[a-zA-Z_][a-zA-Z0-9_]*\{/ {
        name = $0; sub(/\{.*/, "", name)
        labels = $0; sub(/^[^{]*\{/, "", labels); sub(/\}.*/, "", labels)
        n = split(labels, parts, /",/)
        for (i = 1; i <= n; i++) {
            kv = parts[i]
            eq = index(kv, "=")
            if (eq == 0) continue
            key = substr(kv, 1, eq - 1)
            val = substr(kv, eq + 1)
            series = name "/" key
            if (!((series SUBSEP val) in seen)) {
                seen[series, val] = 1
                count[series]++
            }
        }
    }
    END {
        bad = 0
        for (s in count) {
            if (count[s] >= 32) {
                print "cardinality lint: " s " has " count[s] " distinct values" > "/dev/stderr"
                bad = 1
            }
        }
        exit bad
    }
' "$metrics"
rm -f "$metrics" "$out"

echo "==> fed-train trace smoke (cross-subsystem spans, byte-identical runs)"
t1=$(mktemp) t2=$(mktemp) rout=$(mktemp)
go run ./cmd/autolearn fed-train -workers 3 -rounds 2 -ticks 240 \
    -faults lossy-wan -seed 1 -trace "$t1" >/dev/null 2>&1 || {
    echo "traced fed-train run failed" >&2; exit 1; }
go run ./cmd/autolearn fed-train -workers 3 -rounds 2 -ticks 240 \
    -faults lossy-wan -seed 1 -trace "$t2" >/dev/null 2>&1 || {
    echo "second traced fed-train run failed" >&2; exit 1; }
cmp -s "$t1" "$t2" || {
    echo "trace smoke: same-seed fed-train runs exported different trace bytes" >&2
    exit 1
}
go run ./cmd/autolearn obs report -trace "$t1" >"$rout" 2>&1 || {
    echo "obs report failed:" >&2; cat "$rout" >&2; exit 1; }
for stage in fed-train fed-round fed_local_train fed_upload fed_aggregate \
    fed_checkpoint netem_transfer objstore_put serve_reload "orphans: 0"; do
    if ! grep -q "$stage" "$rout"; then
        echo "trace smoke: obs report missing \"$stage\":" >&2
        cat "$rout" >&2
        exit 1
    fi
done
rm -f "$t1" "$t2" "$rout"

echo "==> scenario smoke (library checks, byte-identical replay, probe tolerance)"
# Every checked-in library file must parse, and its canonical form must
# survive a check round-trip (a file the parser rejects or reorders is a
# broken exemplar).
for scn in scenarios/*.scn; do
    go run ./cmd/autolearn scenario check -file "$scn" >/dev/null 2>&1 || {
        echo "scenario smoke: $scn failed scenario check" >&2
        exit 1
    }
done
s1=$(mktemp) s2=$(mktemp)
go run ./cmd/autolearn fed-train -workers 3 -rounds 2 -ticks 240 \
    -scenario scenarios/lossy-wan.scn -seed 1 -trace "$s1" >/dev/null 2>&1 || {
    echo "scenario smoke: scenario-scripted fed-train failed" >&2; exit 1; }
go run ./cmd/autolearn fed-train -workers 3 -rounds 2 -ticks 240 \
    -scenario scenarios/lossy-wan.scn -seed 1 -trace "$s2" >/dev/null 2>&1 || {
    echo "scenario smoke: second scenario-scripted fed-train failed" >&2; exit 1; }
cmp -s "$s1" "$s2" || {
    echo "scenario smoke: same-seed scenario runs exported different trace bytes" >&2
    exit 1
}
# lossy-wan declares 3 phases; each must land in the trace as one
# scenario_phase span (fewer means the scheduler dropped a transition).
phases=$(grep -c '"scenario_phase"' "$s1" || true)
if [ "$phases" -ne 3 ]; then
    echo "scenario smoke: trace has $phases scenario_phase spans, want 3" >&2
    exit 1
fi
rm -f "$s1" "$s2"
# The throughput probe must agree with what the scenario declares: stock
# profiles on the clean file, the shaped sag mid-window on lossy-wan.
go run ./cmd/autolearn scenario probe -file scenarios/clean.scn -at 60s >/dev/null || {
    echo "scenario smoke: clean.scn probe out of tolerance" >&2
    exit 1
}
go run ./cmd/autolearn scenario probe -file scenarios/lossy-wan.scn -at 90s >/dev/null || {
    echo "scenario smoke: lossy-wan.scn probe out of tolerance at 90s" >&2
    exit 1
}

echo "==> gossip smoke (byte-identical same-seed traces, partition survival)"
# Same-seed gossip runs must export byte-identical traces: the overlay's
# whole determinism story (canonical parcel-set merges, seeded peer
# selection, billed clocks) collapses to one cmp.
g1=$(mktemp) g2=$(mktemp) gout=$(mktemp) stout=$(mktemp)
go run ./cmd/autolearn fed-train -topology gossip -workers 3 -rounds 2 -ticks 240 \
    -faults lossy-wan -seed 1 -trace "$g1" >/dev/null 2>&1 || {
    echo "gossip smoke: traced gossip fed-train run failed" >&2; exit 1; }
go run ./cmd/autolearn fed-train -topology gossip -workers 3 -rounds 2 -ticks 240 \
    -faults lossy-wan -seed 1 -trace "$g2" >/dev/null 2>&1 || {
    echo "gossip smoke: second traced gossip run failed" >&2; exit 1; }
cmp -s "$g1" "$g2" || {
    echo "gossip smoke: same-seed gossip runs exported different trace bytes" >&2
    exit 1
}
for span in gossip-train gossip-round gossip_local_train gossip_exchange \
    gossip_validate netem_transfer; do
    if ! grep -q "\"$span\"" "$g1"; then
        echo "gossip smoke: trace missing \"$span\" spans" >&2
        exit 1
    fi
done
# The headline partition claim, end to end through the CLI: under
# cloud-partition.scn the star fleet stalls (its last round aggregates
# nobody and its loss freezes at the last pre-partition value) while the
# gossip overlay goes headless but keeps converging peer-to-peer.
go run ./cmd/autolearn fed-train -topology gossip -workers 4 -rounds 6 -ticks 400 \
    -seed 7 -scenario scenarios/cloud-partition.scn >"$gout" 2>&1 || {
    echo "gossip smoke: partitioned gossip run failed:" >&2; cat "$gout" >&2; exit 1; }
go run ./cmd/autolearn fed-train -workers 4 -rounds 6 -ticks 400 \
    -seed 7 -scenario scenarios/cloud-partition.scn >"$stout" 2>&1 || {
    echo "gossip smoke: partitioned star run failed:" >&2; cat "$stout" >&2; exit 1; }
grep -q 'headless' "$gout" || {
    echo "gossip smoke: partitioned gossip run reports no headless rounds" >&2
    cat "$gout" >&2
    exit 1
}
g3=$(awk '/^   round 3:/ { print $NF }' "$gout")
g6=$(awk '/^   round 6:/ { print $NF }' "$gout")
s3=$(awk '/^   round 3:/ { print $NF }' "$stout")
s6=$(awk '/^   round 6:/ { print $NF }' "$stout")
if [ -z "$g3" ] || [ -z "$g6" ] || [ -z "$s3" ] || [ -z "$s6" ]; then
    echo "gossip smoke: missing per-round losses (gossip '$g3'/'$g6', star '$s3'/'$s6')" >&2
    exit 1
fi
awk -v a="$g6" -v b="$g3" 'BEGIN { exit !(a + 0 < b + 0) }' || {
    echo "gossip smoke: gossip loss did not improve through the partition ($g3 -> $g6)" >&2
    exit 1
}
[ "$s6" = "$s3" ] || {
    echo "gossip smoke: star loss moved through the partition ($s3 -> $s6); the control is broken" >&2
    exit 1
}
grep -q '0 aggregated' "$stout" || {
    echo "gossip smoke: partitioned star run still aggregated workers" >&2
    exit 1
}
rm -f "$g1" "$g2" "$gout" "$stout"

if [ -z "${SKIP_BENCH_GUARD:-}" ] && [ -f BENCH_pr3.json ]; then
    echo "==> benchmark regression guard vs BENCH_pr3.json (SKIP_BENCH_GUARD=1 to skip)"
    bout=$(mktemp)
    # Same profile as scripts/bench.sh; two rounds so one cold-page-cache
    # pass cannot fail the guard (the minimum is compared).
    GOMAXPROCS=1 go test -run '^$' -bench '^BenchmarkFig1Pipeline$' \
        -benchtime 2x -count 2 . >"$bout" 2>&1 || { cat "$bout" >&2; exit 1; }
    GOMAXPROCS=1 go test -run '^$' -bench '^BenchmarkE2GPUSweep$' \
        . >>"$bout" 2>&1 || { cat "$bout" >&2; exit 1; }
    for name in BenchmarkFig1Pipeline BenchmarkE2GPUSweep; do
        base=$(sed -n "s/.*\"$name\": {[^}]*\"ns_per_op\": \([0-9.e+]*\).*/\1/p" BENCH_pr3.json)
        new=$(awk -v n="$name" '$1 ~ "^"n {
            for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") v = $i
            if (min == "" || v + 0 < min + 0) min = v
        } END { print min }' "$bout")
        if [ -z "$base" ] || [ -z "$new" ]; then
            echo "benchmark guard: missing $name measurement (base='$base' new='$new')" >&2
            exit 1
        fi
        if awk -v n="$new" -v b="$base" 'BEGIN { exit !(n > b * 1.25) }'; then
            echo "benchmark guard: $name regressed >25%: $new ns/op vs baseline $base" >&2
            exit 1
        fi
        echo "    $name: $new ns/op (baseline $base, limit +25%)"
    done
    rm -f "$bout"
fi

if [ -z "${SKIP_BENCH_GUARD:-}" ] && [ -f BENCH_pr5.json ]; then
    echo "==> federated regression guard vs BENCH_pr5.json (SKIP_BENCH_GUARD=1 to skip)"
    fout=$(mktemp)
    GOMAXPROCS=1 go test -run '^$' -bench '^BenchmarkE11Federated$' \
        -benchtime 1x . >"$fout" 2>&1 || { cat "$fout" >&2; exit 1; }
    # round_ms is simulated wall-clock, so it is deterministic on any
    # machine: drifting past the limit means federated behavior changed.
    for variant in sync/raw/lossy-wan quorum/raw/lossy-wan sync/topk/clean; do
        name="BenchmarkE11Federated/$variant"
        base=$(awk -v n="\"$name\"" '
            index($0, n": {") { sub(".*\"round_ms\": ", ""); sub("[,}].*", ""); print }
        ' BENCH_pr5.json)
        new=$(awk -v n="$name" '$1 ~ "^"n {
            for (i = 2; i < NF; i++) if ($(i+1) == "round_ms") print $i
        }' "$fout")
        if [ -z "$base" ] || [ -z "$new" ]; then
            echo "federated guard: missing $name round_ms (base='$base' new='$new')" >&2
            exit 1
        fi
        if awk -v n="$new" -v b="$base" 'BEGIN { exit !(n > b * 1.25) }'; then
            echo "federated guard: $name round_ms regressed >25%: $new vs baseline $base" >&2
            exit 1
        fi
        echo "    $name: round_ms $new (baseline $base, limit +25%)"
    done
    # The headline acceptance numbers must keep holding: quorum beats the
    # barrier under the straggler profile, and top-k stays >=3x cheaper.
    awk '
        $1 ~ "^BenchmarkE11Federated/sync/raw/lossy-wan" {
            for (i = 2; i < NF; i++) if ($(i+1) == "round_ms") syncms = $i
        }
        $1 ~ "^BenchmarkE11Federated/quorum/raw/lossy-wan" {
            for (i = 2; i < NF; i++) if ($(i+1) == "round_ms") qms = $i
        }
        $1 ~ "^BenchmarkE11Federated/sync/raw/clean" {
            for (i = 2; i < NF; i++) if ($(i+1) == "bytes_on_wire") rawb = $i
        }
        $1 ~ "^BenchmarkE11Federated/sync/topk/clean" {
            for (i = 2; i < NF; i++) if ($(i+1) == "bytes_on_wire") topkb = $i
        }
        END {
            if (syncms == "" || qms == "" || rawb == "" || topkb == "") {
                print "federated guard: missing E11 metrics" > "/dev/stderr"; exit 1
            }
            if (qms + 0 >= syncms + 0) {
                print "federated guard: quorum round_ms " qms " not faster than sync " syncms > "/dev/stderr"; exit 1
            }
            if (rawb + 0 < 3 * topkb) {
                print "federated guard: topk bytes " topkb " not >=3x smaller than raw " rawb > "/dev/stderr"; exit 1
            }
        }
    ' "$fout"
    rm -f "$fout"
fi

if [ -z "${SKIP_BENCH_GUARD:-}" ]; then
    echo "==> fleet-scale guard (E12: 1k round wall, 10k sub-linearity)"
    eout=$(mktemp)
    GOMAXPROCS=1 go test -run '^$' -bench '^BenchmarkE12FleetScale/hier/w(1000|10000)$' \
        -benchtime 1x . >"$eout" 2>&1 || { cat "$eout" >&2; exit 1; }
    k1=$(awk '$1 == "BenchmarkE12FleetScale/hier/w1000" || $1 ~ "^BenchmarkE12FleetScale/hier/w1000-" {
        for (i = 2; i < NF; i++) if ($(i+1) == "round_ms") print $i }' "$eout")
    k10=$(awk '$1 ~ "^BenchmarkE12FleetScale/hier/w10000" {
        for (i = 2; i < NF; i++) if ($(i+1) == "round_ms") print $i }' "$eout")
    if [ -z "$k1" ] || [ -z "$k10" ]; then
        echo "fleet guard: missing E12 round_ms (1k='$k1' 10k='$k10')" >&2
        cat "$eout" >&2
        exit 1
    fi
    # Hierarchical aggregation's whole point: 10x the fleet must cost less
    # than 10x the simulated round wall (R regional queues drain in
    # parallel; only R partials serialize at the cloud ingress).
    if awk -v a="$k10" -v b="$k1" 'BEGIN { exit !(a + 0 >= 10 * b) }'; then
        echo "fleet guard: 10k-worker round_ms $k10 not sub-linear vs 1k-worker $k1 (limit <10x)" >&2
        exit 1
    fi
    echo "    hier/w1000 round_ms $k1, hier/w10000 round_ms $k10 (sub-linear)"
    if [ -f BENCH_pr7.json ]; then
        # round_ms is simulated wall-clock — deterministic on any machine —
        # so any drift past the limit means coordination behavior changed.
        base=$(awk -v n="\"BenchmarkE12FleetScale/hier/w1000\"" '
            index($0, n": {") { sub(".*\"round_ms\": ", ""); sub("[,}].*", ""); print }
        ' BENCH_pr7.json)
        if [ -n "$base" ]; then
            if awk -v n="$k1" -v b="$base" 'BEGIN { exit !(n > b * 1.25) }'; then
                echo "fleet guard: hier/w1000 round_ms regressed >25%: $k1 vs baseline $base" >&2
                exit 1
            fi
            echo "    hier/w1000: round_ms $k1 (baseline $base, limit +25%)"
        fi
    fi
    rm -f "$eout"
fi

if [ -z "${SKIP_BENCH_GUARD:-}" ]; then
    echo "==> registry contention guard (sharded >=2x mutex at 8 goroutines)"
    cout=$(mktemp)
    GOMAXPROCS=8 go test -run '^$' -bench '^BenchmarkRegistryContention/(mutex|sharded)/g8$' \
        -benchtime 0.5s ./internal/obs/ >"$cout" 2>&1 || { cat "$cout" >&2; exit 1; }
    mutex=$(awk '$1 ~ "^BenchmarkRegistryContention/mutex/g8" {
        for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") print $i }' "$cout")
    sharded=$(awk '$1 ~ "^BenchmarkRegistryContention/sharded/g8" {
        for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") print $i }' "$cout")
    if [ -z "$mutex" ] || [ -z "$sharded" ]; then
        echo "contention guard: missing measurement (mutex='$mutex' sharded='$sharded')" >&2
        cat "$cout" >&2
        exit 1
    fi
    if awk -v m="$mutex" -v s="$sharded" 'BEGIN { exit !(m < 2 * s) }'; then
        echo "contention guard: sharded/g8 $sharded ns/op not >=2x faster than mutex/g8 $mutex" >&2
        exit 1
    fi
    echo "    mutex/g8 $mutex ns/op vs sharded/g8 $sharded ns/op"
    if [ -f BENCH_pr6.json ]; then
        base=$(sed -n 's/.*"BenchmarkRegistryContention\/sharded\/g8": {[^}]*"ns_per_op": \([0-9.e+]*\).*/\1/p' BENCH_pr6.json)
        if [ -n "$base" ]; then
            if awk -v n="$sharded" -v b="$base" 'BEGIN { exit !(n > b * 1.25) }'; then
                echo "contention guard: sharded/g8 regressed >25%: $sharded ns/op vs baseline $base" >&2
                exit 1
            fi
            echo "    sharded/g8: $sharded ns/op (baseline $base, limit +25%)"
        fi
    fi
    rm -f "$cout"
fi

if [ -z "${SKIP_BENCH_GUARD:-}" ]; then
    echo "==> quantized inference guard (E14: int8 >=2x float64, drift in budget)"
    qout=$(mktemp)
    GOMAXPROCS=1 go test -run '^$' -bench '^BenchmarkE14Quantized$' \
        -benchtime 2x -count 2 . >"$qout" 2>&1 || { cat "$qout" >&2; exit 1; }
    f64=$(awk '$1 ~ "^BenchmarkE14Quantized/float64" {
        for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") v = $i
        if (min == "" || v + 0 < min + 0) min = v
    } END { print min }' "$qout")
    i8=$(awk '$1 ~ "^BenchmarkE14Quantized/int8" {
        for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") v = $i
        if (min == "" || v + 0 < min + 0) min = v
    } END { print min }' "$qout")
    drift=$(awk '$1 ~ "^BenchmarkE14Quantized/int8" {
        for (i = 2; i < NF; i++) if ($(i+1) == "quant_maxdelta") print $i
    }' "$qout" | head -1)
    if [ -z "$f64" ] || [ -z "$i8" ] || [ -z "$drift" ]; then
        echo "quant guard: missing E14 measurement (float64='$f64' int8='$i8' drift='$drift')" >&2
        cat "$qout" >&2
        exit 1
    fi
    # The headline acceptance number: the int8 path must stay at least
    # twice as fast as the float64 kernels on the same batch.
    if awk -v q="$i8" -v f="$f64" 'BEGIN { exit !(2 * q > f) }'; then
        echo "quant guard: int8 $i8 ns/op not >=2x faster than float64 $f64" >&2
        exit 1
    fi
    # The benchmark already b.Fatals past eval.QuantBudget; re-checking
    # the reported number here keeps the guard honest if that changes.
    if awk -v d="$drift" 'BEGIN { exit !(d > 0.05) }'; then
        echo "quant guard: quant_maxdelta $drift exceeds the 0.05 budget" >&2
        exit 1
    fi
    echo "    float64 $f64 ns/op vs int8 $i8 ns/op (drift $drift)"
    if [ -f BENCH_pr9.json ]; then
        base=$(sed -n 's/.*"BenchmarkE14Quantized\/int8": {[^}]*"ns_per_op": \([0-9.e+]*\).*/\1/p' BENCH_pr9.json)
        if [ -n "$base" ]; then
            if awk -v n="$i8" -v b="$base" 'BEGIN { exit !(n > b * 1.25) }'; then
                echo "quant guard: int8 regressed >25%: $i8 ns/op vs baseline $base" >&2
                exit 1
            fi
            echo "    int8: $i8 ns/op (baseline $base, limit +25%)"
        fi
    fi
    rm -f "$qout"
fi

if [ -z "${SKIP_BENCH_GUARD:-}" ]; then
    echo "==> serve scale-out guard (E14: procs8 >=3x procs1 req/s)"
    sout=$(mktemp)
    # The rows pin their own GOMAXPROCS (procsN runs at N), so no global
    # pin; the modeled dispatch makes req/s scheduling-bound, hence
    # stable enough to gate on even on a small host.
    go test -run '^$' -bench '^BenchmarkE14Serving/(procs1|procs8)$' \
        -benchtime 2000x . >"$sout" 2>&1 || { cat "$sout" >&2; exit 1; }
    r1=$(awk '$1 ~ "^BenchmarkE14Serving/procs1-" || $1 == "BenchmarkE14Serving/procs1" {
        for (i = 2; i < NF; i++) if ($(i+1) == "req/s") print $i }' "$sout")
    r8=$(awk '$1 ~ "^BenchmarkE14Serving/procs8" {
        for (i = 2; i < NF; i++) if ($(i+1) == "req/s") print $i }' "$sout")
    if [ -z "$r1" ] || [ -z "$r8" ]; then
        echo "scale-out guard: missing E14 req/s (procs1='$r1' procs8='$r8')" >&2
        cat "$sout" >&2
        exit 1
    fi
    if awk -v a="$r8" -v b="$r1" 'BEGIN { exit !(a + 0 < 3 * b) }'; then
        echo "scale-out guard: procs8 $r8 req/s not >=3x procs1 $r1" >&2
        exit 1
    fi
    echo "    procs1 $r1 req/s vs procs8 $r8 req/s"
    rm -f "$sout"
fi

if [ -z "${SKIP_BENCH_GUARD:-}" ]; then
    echo "==> dissemination guard (E15: partition survival, wire-cost drift)"
    dout=$(mktemp)
    GOMAXPROCS=1 go test -run '^$' -bench '^BenchmarkE15Gossip$' \
        -benchtime 1x . >"$dout" 2>&1 || { cat "$dout" >&2; exit 1; }
    gsurv=$(awk '$1 ~ "^BenchmarkE15Gossip/gossip/cloud-partition" {
        for (i = 2; i < NF; i++) if ($(i+1) == "partition_survived") print $i }' "$dout")
    ssurv=$(awk '$1 ~ "^BenchmarkE15Gossip/star/cloud-partition" {
        for (i = 2; i < NF; i++) if ($(i+1) == "partition_survived") print $i }' "$dout")
    gwire=$(awk '$1 ~ "^BenchmarkE15Gossip/gossip/clean" {
        for (i = 2; i < NF; i++) if ($(i+1) == "bytes_on_wire") print $i }' "$dout")
    if [ -z "$gsurv" ] || [ -z "$ssurv" ] || [ -z "$gwire" ]; then
        echo "dissemination guard: missing E15 metrics (gossip='$gsurv' star='$ssurv' wire='$gwire')" >&2
        cat "$dout" >&2
        exit 1
    fi
    if awk -v g="$gsurv" -v s="$ssurv" 'BEGIN { exit !(g + 0 == 1 && s + 0 == 0) }'; then :; else
        echo "dissemination guard: partition_survived gossip=$gsurv star=$ssurv (want 1 and 0)" >&2
        exit 1
    fi
    echo "    partition_survived: gossip $gsurv, star $ssurv"
    if [ -f BENCH_pr10.json ]; then
        # bytes_on_wire is billed on the simulated links, so it is
        # deterministic on any machine: drifting >25% past the baseline
        # means the overlay's wire economics changed, not the host.
        base=$(awk -v n="\"BenchmarkE15Gossip/gossip/clean\"" '
            index($0, n": {") { sub(".*\"bytes_on_wire\": ", ""); sub("[,}].*", ""); print }
        ' BENCH_pr10.json)
        if [ -n "$base" ]; then
            if awk -v n="$gwire" -v b="$base" 'BEGIN { exit !(n > b * 1.25) }'; then
                echo "dissemination guard: gossip/clean bytes_on_wire grew >25%: $gwire vs baseline $base" >&2
                exit 1
            fi
            echo "    gossip/clean: bytes_on_wire $gwire (baseline $base, limit +25%)"
        fi
    fi
    rm -f "$dout"
fi

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "OK: vet, build, race tests, fault smoke, cardinality lint, trace smoke, scenario smoke, gossip smoke, and gofmt all clean."
